package checker

import (
	"fmt"
	"sort"
	"strings"

	"enclaves/internal/model"
)

// Report bundles a full verification run: the Section 5 obligations over the
// improved protocol and the Section 2.3 attack findings over the legacy
// baseline. cmd/verify renders it; EXPERIMENTS.md records it.
type Report struct {
	Config   model.Config
	States   int
	Edges    int
	Depth    int
	Improved []Obligation
	Diagram  *DiagramResult

	LegacyConfig model.LegacyConfig
	LegacyStates int
	LegacyDepth  int
	Legacy       []Obligation
}

// Run performs the complete verification: explore the improved model, check
// every invariant and the verification diagram, then explore the legacy
// model and collect the attacks.
func Run(cfg model.Config, legacyCfg model.LegacyConfig) *Report {
	ex := Explore(cfg)
	rep := &Report{
		Config:   cfg,
		States:   len(ex.Nodes),
		Edges:    len(ex.Edges),
		Depth:    ex.Depth,
		Improved: AllInvariants(ex),
	}
	// The Figure 4 diagram abstracts the crash-free, flat-keyed protocol;
	// the failover and LKH extensions add states that intentionally live
	// outside its boxes, so the diagram obligations only apply to the base
	// configuration (the extension invariants are discharged above).
	if !cfg.Failover && !cfg.LKH {
		rep.Diagram = CheckDiagram(ex)
		rep.Improved = append(rep.Improved, rep.Diagram.Obligations...)
	}

	lex := ExploreLegacy(legacyCfg)
	rep.LegacyConfig = legacyCfg
	rep.LegacyStates = len(lex.Nodes)
	rep.LegacyDepth = lex.Depth
	rep.Legacy = LegacyObligations(lex)
	return rep
}

// AllHold reports whether every improved-protocol obligation is discharged
// and every legacy attack was found.
func (r *Report) AllHold() bool {
	for _, o := range r.Improved {
		if !o.Holds {
			return false
		}
	}
	for _, o := range r.Legacy {
		if !o.Holds {
			return false
		}
	}
	return true
}

// String renders the report in the style of Section 5 / Section 2.3.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Improved Enclaves protocol (Section 3.2) — bounded verification\n")
	fmt.Fprintf(&b, "  bounds: %d user sessions, %d admin messages/session\n", r.Config.MaxSessions, r.Config.MaxAdmin)
	fmt.Fprintf(&b, "  reachable states: %d   transitions: %d   max depth: %d\n\n", r.States, r.Edges, r.Depth)
	for _, o := range r.Improved {
		fmt.Fprintln(&b, o)
	}
	if r.Diagram != nil {
		fmt.Fprintf(&b, "\nVerification diagram (Figure 4) — observed box occupancy:\n")
		ids := make([]string, 0, len(r.Diagram.BoxCounts))
		for id := range r.Diagram.BoxCounts {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if len(ids[i]) != len(ids[j]) {
				return len(ids[i]) < len(ids[j])
			}
			return ids[i] < ids[j]
		})
		for _, id := range ids {
			fmt.Fprintf(&b, "  %-4s %6d states\n", id, r.Diagram.BoxCounts[id])
		}
		fmt.Fprintf(&b, "\nObserved diagram edges:\n%s", r.Diagram.AdjacencyTable())
	}

	fmt.Fprintf(&b, "\nLegacy Enclaves protocol (Section 2.2) — attack search (Section 2.3)\n")
	fmt.Fprintf(&b, "  bounds: %d rekeys; insider E initially a member\n", r.LegacyConfig.MaxRekeys)
	fmt.Fprintf(&b, "  reachable states: %d   max depth: %d\n\n", r.LegacyStates, r.LegacyDepth)
	for _, o := range r.Legacy {
		verdict := "ATTACK FOUND (paper confirmed)"
		if !o.Holds {
			verdict = "NOT FOUND (disagrees with paper)"
		}
		fmt.Fprintf(&b, "[%s] %-60s %s\n", o.ID, o.Name, verdict)
		if len(o.Witness) > 0 {
			fmt.Fprintf(&b, "    shortest attack (%s):\n", o.Detail)
			for _, step := range o.Witness {
				fmt.Fprintf(&b, "      %s\n", step)
			}
		}
	}
	return b.String()
}
