package checker

import (
	"testing"

	"enclaves/internal/model"
)

// TestReplayOnlyIntruderAblation checks the DESIGN.md ablation claim: with
// the secrecy invariants intact, the replay-only intruder reaches exactly
// the same honest-visible states as the full lazy-synthesis intruder,
// because synthesized injections can only fire after a key compromise that
// never happens while a key is in use.
func TestReplayOnlyIntruderAblation(t *testing.T) {
	full := Explore(model.DefaultConfig())
	replayOnly := Explore(model.Config{
		MaxSessions:        model.DefaultConfig().MaxSessions,
		MaxAdmin:           model.DefaultConfig().MaxAdmin,
		ReplayOnlyIntruder: true,
	})

	if len(full.Nodes) != len(replayOnly.Nodes) {
		t.Errorf("state counts differ: full=%d replay-only=%d",
			len(full.Nodes), len(replayOnly.Nodes))
	}
	if len(full.Edges) != len(replayOnly.Edges) {
		t.Errorf("edge counts differ: full=%d replay-only=%d",
			len(full.Edges), len(replayOnly.Edges))
	}

	// Every obligation must hold under both intruders.
	for _, ex := range []*Exploration{full, replayOnly} {
		for _, o := range AllInvariants(ex) {
			if !o.Holds {
				t.Errorf("obligation failed: %s", o)
			}
		}
	}
}

// TestNoIntruderInjectionEverFires asserts the secrecy consequence
// directly: in the full model at the default bound, no reachable transition
// is an intruder injection — every forgeable pattern requires a key the
// secrecy theorems keep out of the intruder's hands while any guard would
// accept it.
func TestNoIntruderInjectionEverFires(t *testing.T) {
	ex := Explore(model.DefaultConfig())
	for _, e := range ex.Edges {
		if e.Step.Actor == model.AgentIntruder {
			t.Fatalf("intruder injection fired: %s", e.Step)
		}
	}
}
