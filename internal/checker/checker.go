// Package checker explores the reachable state space of the protocol models
// in package model and mechanically discharges the verification obligations
// of Section 5 of the paper:
//
//   - secrecy of the long-term key P_a (Section 5.1, regularity),
//   - secrecy of in-use session keys via ideals/coideals (Section 5.2),
//   - validity of the verification diagram (Section 5.3, Figure 4),
//   - the derived properties of Section 5.4: in-order duplicate-free
//     delivery of group-management messages, proper user authentication,
//     and key/nonce agreement.
//
// For the legacy protocol model it searches for the Section 2.3 attacks and
// returns the counterexample traces.
//
// The exploration is exhaustive within the bounds of a model.Config; it is
// the executable counterpart of the paper's PVS proofs (see DESIGN.md for
// the substitution argument).
package checker

import (
	"fmt"
	"strings"

	"enclaves/internal/model"
)

// Node is a state in the breadth-first exploration, with enough provenance
// to reconstruct a counterexample trace.
type Node struct {
	State  *model.State
	Parent *Node
	Via    model.Step // the step that produced this node (zero for the root)
	Depth  int
}

// Trace reconstructs the action sequence from the initial state to n.
func (n *Node) Trace() []string {
	var rev []string
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		rev = append(rev, cur.Via.String())
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Edge is one explored transition, retained for diagram checking.
type Edge struct {
	From *Node
	Step model.Step
	To   *Node
}

// Exploration is the result of an exhaustive bounded search of the improved
// protocol model.
type Exploration struct {
	System *model.System
	Nodes  []*Node
	Edges  []Edge
	Depth  int // maximum BFS depth reached
}

// Explore performs an exhaustive breadth-first search of the improved model
// bounded by cfg, retaining every node and edge.
func Explore(cfg model.Config) *Exploration {
	sys := model.NewSystem(cfg)
	root := &Node{State: sys.Initial()}
	visited := map[string]*Node{root.State.Key(): root}
	ex := &Exploration{System: sys, Nodes: []*Node{root}}

	frontier := []*Node{root}
	for len(frontier) > 0 {
		var next []*Node
		for _, n := range frontier {
			for _, step := range sys.Successors(n.State) {
				key := step.Next.Key()
				to, seen := visited[key]
				if !seen {
					to = &Node{State: step.Next, Parent: n, Via: step, Depth: n.Depth + 1}
					visited[key] = to
					ex.Nodes = append(ex.Nodes, to)
					next = append(next, to)
					if to.Depth > ex.Depth {
						ex.Depth = to.Depth
					}
				}
				ex.Edges = append(ex.Edges, Edge{From: n, Step: step, To: to})
			}
		}
		frontier = next
	}
	return ex
}

// Obligation is one named proof obligation with its verdict.
type Obligation struct {
	ID      string // e.g. "5.1", "5.4a", "F4/Q3->Q4"
	Name    string
	Holds   bool
	Detail  string   // statistics or failure description
	Witness []string // counterexample trace if the obligation fails
}

func (o Obligation) String() string {
	verdict := "PROVED"
	if !o.Holds {
		verdict = "VIOLATED"
	}
	s := fmt.Sprintf("[%s] %-55s %s", o.ID, o.Name, verdict)
	if o.Detail != "" {
		s += " (" + o.Detail + ")"
	}
	if len(o.Witness) > 0 {
		s += "\n    counterexample:\n      " + strings.Join(o.Witness, "\n      ")
	}
	return s
}
