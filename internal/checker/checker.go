// Package checker explores the reachable state space of the protocol models
// in package model and mechanically discharges the verification obligations
// of Section 5 of the paper:
//
//   - secrecy of the long-term key P_a (Section 5.1, regularity),
//   - secrecy of in-use session keys via ideals/coideals (Section 5.2),
//   - validity of the verification diagram (Section 5.3, Figure 4),
//   - the derived properties of Section 5.4: in-order duplicate-free
//     delivery of group-management messages, proper user authentication,
//     and key/nonce agreement.
//
// For the legacy protocol model it searches for the Section 2.3 attacks and
// returns the counterexample traces.
//
// The exploration is exhaustive within the bounds of a model.Config; it is
// the executable counterpart of the paper's PVS proofs (see DESIGN.md for
// the substitution argument).
package checker

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"enclaves/internal/model"
	"enclaves/internal/symbolic"
)

// Node is a state in the breadth-first exploration, with enough provenance
// to reconstruct a counterexample trace.
type Node struct {
	State  *model.State
	Parent *Node
	Via    model.Step // the step that produced this node (zero for the root)
	Depth  int
}

// Trace reconstructs the action sequence from the initial state to n.
func (n *Node) Trace() []string {
	var rev []string
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		rev = append(rev, cur.Via.String())
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Edge is one explored transition, retained for diagram checking.
type Edge struct {
	From *Node
	Step model.Step
	To   *Node
}

// Exploration is the result of an exhaustive bounded search of the improved
// protocol model.
type Exploration struct {
	System *model.System
	Nodes  []*Node
	Edges  []Edge // nil when explored with Options.Edges == false
	Depth  int    // maximum BFS depth reached
	// Transitions counts every explored transition, whether or not the edge
	// list is retained; with Options.Edges it equals len(Edges).
	Transitions int
	// HonestSends and RegViolation are the streaming Section 5.1 regularity
	// statistics, computed by the expansion workers so the obligation does
	// not need the (optionally discarded) edge list: the number of honest
	// emissions checked, and the deterministically-first edge whose honest
	// emission contains P_a (nil when regularity holds).
	HonestSends  int
	RegViolation *Edge
}

// Options tunes an exploration. The zero value means sequential search with
// the edge list retained.
type Options struct {
	// Workers bounds the expansion worker pool; 0 or 1 explores on the
	// calling goroutine. Results are bit-identical for every worker count.
	Workers int
	// Edges retains the full transition list on Exploration.Edges. Only the
	// Figure 4 diagram check needs it; memory-bound runs (LKH, deep bounds)
	// should leave it off.
	Edges bool
}

// DefaultOptions is what Explore uses: all cores, edges retained.
func DefaultOptions() Options {
	return Options{Workers: runtime.GOMAXPROCS(0), Edges: true}
}

// Explore performs an exhaustive breadth-first search of the improved model
// bounded by cfg, retaining every node and edge, using every core.
func Explore(cfg model.Config) *Exploration {
	return ExploreOpts(cfg, DefaultOptions())
}

// succ is one generated transition, recorded by a worker in generation
// order for the deterministic level-barrier merge.
type succ struct {
	from *Node
	step model.Step
	node *Node // claimed target; State==nil iff first claimed this level
}

// chunkResult is the output of expanding one frontier chunk.
type chunkResult struct {
	succs       []succ
	honestSends int
	reg         *Edge // first regularity violation within the chunk, if any
}

// frontierChunk is the work-stealing granularity: big enough to amortize
// the atomic claim, small enough to balance skewed successor counts.
const frontierChunk = 32

// ExploreOpts performs the same exhaustive breadth-first search as Explore
// with explicit Options.
//
// The search is level-synchronous: each BFS level is split into fixed-size
// chunks that workers claim with an atomic counter (work stealing — a
// worker stuck on a successor-heavy chunk simply claims fewer chunks).
// Workers expand states and claim successor keys in the sharded visitedSet,
// where the first claim installs a placeholder node with State == nil; the
// merge at the level barrier then walks the chunks IN ORDER and finalizes
// each placeholder from the first edge that reached it. Node identity,
// node/edge order, depths and counterexample traces are therefore exactly
// those of the sequential left-to-right search, for every worker count.
func ExploreOpts(cfg model.Config, opts Options) *Exploration {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	sys := model.NewSystem(cfg)
	pa := sys.LongTermKey()
	root := &Node{State: sys.Initial()}
	visited := newVisitedSet(workers)
	rootNode, _ := visited.claim(root.State.Key())
	rootNode.State = root.State
	root = rootNode
	ex := &Exploration{System: sys, Nodes: []*Node{root}}

	frontier := []*Node{root}
	for len(frontier) > 0 {
		nChunks := (len(frontier) + frontierChunk - 1) / frontierChunk
		results := make([]chunkResult, nChunks)

		expand := func(ci int) {
			lo := ci * frontierChunk
			hi := min(lo+frontierChunk, len(frontier))
			res := &results[ci]
			for _, n := range frontier[lo:hi] {
				for _, step := range sys.Successors(n.State) {
					to, _ := visited.claim(step.Next.Key())
					res.succs = append(res.succs, succ{from: n, step: step, node: to})
					if step.Actor != model.AgentIntruder && step.Emitted != nil {
						res.honestSends++
						if res.reg == nil &&
							symbolic.Parts(symbolic.NewSet(step.Emitted.Content)).Contains(pa) {
							res.reg = &Edge{From: n, Step: step, To: to}
						}
					}
				}
			}
		}

		if workers == 1 || nChunks == 1 {
			for ci := 0; ci < nChunks; ci++ {
				expand(ci)
			}
		} else {
			var nextChunk atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < min(workers, nChunks); w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						ci := int(nextChunk.Add(1)) - 1
						if ci >= nChunks {
							return
						}
						expand(ci)
					}
				}()
			}
			wg.Wait()
		}

		// Deterministic merge: chunk order is frontier order, so the node
		// that finalizes each placeholder — and the retained edge order —
		// match the sequential search exactly.
		var next []*Node
		for ci := range results {
			res := &results[ci]
			ex.HonestSends += res.honestSends
			if res.reg != nil && ex.RegViolation == nil {
				ex.RegViolation = res.reg
			}
			ex.Transitions += len(res.succs)
			for _, t := range res.succs {
				if t.node.State == nil {
					t.node.State = t.step.Next
					t.node.Parent = t.from
					t.node.Via = t.step
					t.node.Depth = t.from.Depth + 1
					ex.Nodes = append(ex.Nodes, t.node)
					next = append(next, t.node)
					if t.node.Depth > ex.Depth {
						ex.Depth = t.node.Depth
					}
				}
				if opts.Edges {
					ex.Edges = append(ex.Edges, Edge{From: t.from, Step: t.step, To: t.node})
				}
			}
		}
		frontier = next
	}
	return ex
}

// Obligation is one named proof obligation with its verdict.
type Obligation struct {
	ID      string // e.g. "5.1", "5.4a", "F4/Q3->Q4"
	Name    string
	Holds   bool
	Detail  string   // statistics or failure description
	Witness []string // counterexample trace if the obligation fails
}

func (o Obligation) String() string {
	verdict := "PROVED"
	if !o.Holds {
		verdict = "VIOLATED"
	}
	s := fmt.Sprintf("[%s] %-55s %s", o.ID, o.Name, verdict)
	if o.Detail != "" {
		s += " (" + o.Detail + ")"
	}
	if len(o.Witness) > 0 {
		s += "\n    counterexample:\n      " + strings.Join(o.Witness, "\n      ")
	}
	return s
}
