package checker

import (
	"strings"
	"testing"

	"enclaves/internal/model"
)

// These tests discharge the verification obligations over the failover
// extension: the primary may crash and hand A's session to the promoted
// standby via the sealed replication channel, and A resumes with the
// Resume/ResumeAck exchange. Every Section 5 property must survive the
// extension, plus the new K_r secrecy obligation (5.5). The Figure 4
// diagram is NOT checked here — it abstracts the crash-free protocol and
// the failover states intentionally live outside it.

var failoverExploration *Exploration

func exploreFailover() *Exploration {
	if failoverExploration == nil {
		failoverExploration = Explore(model.Config{MaxSessions: 2, MaxAdmin: 2, Failover: true})
	}
	return failoverExploration
}

func TestFailoverInvariants(t *testing.T) {
	ex := exploreFailover()
	for _, o := range AllInvariants(ex) {
		if !o.Holds {
			t.Errorf("obligation violated under failover: %s", o)
		}
	}
}

// TestFailoverReachesResumption: the extension is not vacuous — crashes,
// promotions and completed resumptions are all reachable, and the admin
// pipeline continues across a failover (payloads accepted after the
// resumption extend rcv_A past its pre-crash length).
func TestFailoverReachesResumption(t *testing.T) {
	ex := exploreFailover()
	var promoted, resuming, resumed, continued int
	for _, n := range ex.Nodes {
		s := n.State
		if s.Lead.Phase == model.LeadPromoted {
			promoted++
		}
		if s.Usr.Phase == model.UserResuming {
			resuming++
		}
		if s.Failovers > 0 && s.ResumesStarted > 0 &&
			s.Usr.Phase == model.UserConnected && s.Lead.Phase == model.LeadConnected {
			resumed++
		}
		if s.Failovers > 0 && len(s.RcvA) > 1 {
			continued++
		}
	}
	if promoted == 0 || resuming == 0 || resumed == 0 {
		t.Fatalf("failover path not exercised: promoted=%d resuming=%d resumed=%d",
			promoted, resuming, resumed)
	}
	if continued == 0 {
		t.Fatal("no state continues the admin pipeline after a resumption")
	}
}

// TestFailoverTransitionCoverage: the new FSM edges are all observed —
// crash (Connected -> Promoted), resume acceptance (Promoted ->
// WaitingForAck), resume start (Connected -> Resuming) and resume
// completion (Resuming -> Connected).
func TestFailoverTransitionCoverage(t *testing.T) {
	ex := exploreFailover()
	type phasePair struct{ from, to string }
	userEdges := make(map[phasePair]bool)
	leadEdges := make(map[phasePair]bool)
	replDeltas := 0
	for _, e := range ex.Edges {
		fu, tu := e.From.State.Usr.Phase.String(), e.To.State.Usr.Phase.String()
		if fu != tu {
			userEdges[phasePair{fu, tu}] = true
		}
		fl, tl := e.From.State.Lead.Phase.String(), e.To.State.Lead.Phase.String()
		if fl != tl {
			leadEdges[phasePair{fl, tl}] = true
		}
		if e.Step.Emitted != nil && e.Step.Emitted.Label == model.LabelReplDelta &&
			e.Step.Actor == model.AgentLeader {
			replDeltas++
		}
	}
	for _, want := range []phasePair{{"Connected", "Resuming"}, {"Resuming", "Connected"}} {
		if !userEdges[want] {
			t.Errorf("user FSM edge %s -> %s never exercised", want.from, want.to)
		}
	}
	for _, want := range []phasePair{
		{"Connected", "Promoted"},     // crash + promotion
		{"Promoted", "WaitingForAck"}, // resume accepted, ResumeAck sent
		{"Promoted", "NotConnected"},  // close while promoted
	} {
		if !leadEdges[want] {
			t.Errorf("leader FSM edge %s -> %s never exercised", want.from, want.to)
		}
	}
	if replDeltas == 0 {
		t.Error("no honest ReplDelta emission observed")
	}
}

// TestFailoverReplKeySecrecy: the 5.5 obligation holds non-vacuously — the
// trace really contains ReplDelta messages sealed under K_r while K_r stays
// out of the intruder's knowledge.
func TestFailoverReplKeySecrecy(t *testing.T) {
	ex := exploreFailover()
	if o := CheckSecrecyRepl(ex); !o.Holds {
		t.Fatalf("5.5 violated: %s", o)
	}
	seen := false
	for _, n := range ex.Nodes {
		for _, m := range n.State.Messages() {
			if m.Label == model.LabelReplDelta {
				seen = true
			}
		}
		if seen {
			break
		}
	}
	if !seen {
		t.Fatal("K_r secrecy check is vacuous: no ReplDelta in any trace")
	}
}

// TestFailoverResumeIsOneShot: no reachable state shows two resume
// acceptances for one crash — the replicated nonce is consumed by the first
// accepted Resume, so a replayed Resume can never be accepted again.
func TestFailoverResumeIsOneShot(t *testing.T) {
	ex := exploreFailover()
	for _, n := range ex.Nodes {
		accepts := 0
		for _, step := range n.Trace() {
			if strings.Contains(step, "accept Resume,") {
				accepts++
			}
		}
		if accepts > n.State.Failovers {
			t.Fatalf("%d resume acceptances for %d crashes:\n%s",
				accepts, n.State.Failovers, strings.Join(n.Trace(), "\n"))
		}
	}
}

// TestCheckerDetectsWeakResumeFreshness is the sensitivity (mutation) test
// of the failover verification: dropping the resuming user's echoed-nonce
// check lets a replayed pre-crash AdminMsg pass for the ResumeAck, and the
// checker must catch the resulting duplicate acceptance as a 5.4a prefix
// violation.
func TestCheckerDetectsWeakResumeFreshness(t *testing.T) {
	ex := Explore(model.Config{MaxSessions: 1, MaxAdmin: 1, Failover: true, WeakResumeFreshness: true})
	o := CheckPrefixDelivery(ex)
	if o.Holds {
		t.Fatal("checker failed to detect the weakened resume freshness guard")
	}
	if len(o.Witness) == 0 {
		t.Fatal("violation reported without a counterexample trace")
	}
	trace := strings.Join(o.Witness, "\n")
	if !strings.Contains(trace, "send Resume") {
		t.Errorf("counterexample does not involve a resumption:\n%s", trace)
	}

	// The mutation breaks ORDERING only: secrecy of P_a, K_a and K_r must
	// all survive, confirming the checker separates the failure classes.
	for _, check := range []func(*Exploration) Obligation{
		CheckSecrecyLongTerm, CheckSecrecySession, CheckSecrecyRepl, CheckAuthentication,
	} {
		if o := check(ex); !o.Holds {
			t.Errorf("unexpected break in weak-resume variant: %s", o)
		}
	}
}
