package checker

import "sync"

// visitedSet is the lock-striped seen-set of the parallel BFS: a power-of-two
// array of shards, each a mutex-guarded map keyed by the 64-bit FNV-1a hash
// of the canonical state key. The full key is kept in the entry only to
// confirm (or chain past) hash collisions, so the hot path compares one
// uint64 instead of a few-hundred-byte string. This is the PR 5 stripe
// pattern (internal/group/shard.go) applied to verification speed.
type visitedSet struct {
	shards []visitedShard
	mask   uint64
}

type visitedShard struct {
	mu sync.Mutex
	m  map[uint64]*ventry
}

// ventry holds one claimed state. Entries with equal hashes but different
// canonical keys chain through next.
type ventry struct {
	key  string
	node *Node
	next *ventry
}

// newVisitedSet sizes the stripe count to the worker count: the next power
// of two of 8× workers keeps the expected shard contention below one
// waiter even under fully random key access.
func newVisitedSet(workers int) *visitedSet {
	n := 1
	for n < 8*workers {
		n <<= 1
	}
	v := &visitedSet{shards: make([]visitedShard, n), mask: uint64(n - 1)}
	for i := range v.shards {
		v.shards[i].m = make(map[uint64]*ventry)
	}
	return v
}

// FNV-1a 64-bit constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// claim registers key and returns its node. The first caller for a key gets
// created=true and a FRESH node with State nil — the node is a placeholder
// until the deterministic level-barrier merge finalizes its provenance
// (State/Parent/Via/Depth), so which worker wins the claim race never
// influences which concrete state becomes the representative. Later callers
// get the same node with created=false.
func (v *visitedSet) claim(key string) (node *Node, created bool) {
	h := fnv64a(key)
	sh := &v.shards[h&v.mask]
	sh.mu.Lock()
	for e := sh.m[h]; e != nil; e = e.next {
		if e.key == key {
			sh.mu.Unlock()
			return e.node, false
		}
	}
	n := &Node{}
	sh.m[h] = &ventry{key: key, node: n, next: sh.m[h]}
	sh.mu.Unlock()
	return n, true
}

// len returns the number of distinct keys claimed so far.
func (v *visitedSet) len() int {
	total := 0
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			for ; e != nil; e = e.next {
				total++
			}
		}
		sh.mu.Unlock()
	}
	return total
}
