package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// withEnabled runs f with collection on, restoring the previous state.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	Enable()
	defer func() {
		if !prev {
			Disable()
		}
	}()
	f()
}

func TestCounterGauge(t *testing.T) {
	c := NewCounter("test_counter_total")
	g := NewGauge("test_gauge")
	withEnabled(t, func() {
		c.Inc()
		c.Add(4)
		g.Set(7)
		g.Add(-2)
	})
	if v := c.Value(); v != 5 {
		t.Fatalf("counter = %d, want 5", v)
	}
	if v := g.Value(); v != 5 {
		t.Fatalf("gauge = %d, want 5", v)
	}
}

func TestStripedGauge(t *testing.T) {
	g := NewStripedGauge("test_striped_gauge", 5) // rounds up to 8
	if n := g.Stripes(); n != 8 {
		t.Fatalf("stripes = %d, want 8 (5 rounded up to a power of two)", n)
	}
	withEnabled(t, func() {
		g.Add(0, 3)
		g.Add(1, 2)
		g.Add(9, 1) // masks to slot 1
		g.Add(1000, 5)
		g.Add(0, -3)
	})
	if v := g.Value(); v != 8 {
		t.Fatalf("striped sum = %d, want 8", v)
	}
	// The snapshot reports the sum, same shape as a plain gauge.
	if sv := g.snapshotValue().(int64); sv != 8 {
		t.Fatalf("snapshot = %d, want 8", sv)
	}
}

// TestStripedGaugeConcurrent hammers distinct and colliding slots from many
// goroutines with balanced add/sub pairs while readers sum concurrently; the
// final aggregate must be exactly zero (no lost updates), which is the
// exactness guarantee the outbox-depth gauge relies on under parallel
// fan-out workers.
func TestStripedGaugeConcurrent(t *testing.T) {
	g := NewStripedGauge("test_striped_gauge_conc", 8)
	withEnabled(t, func() {
		const (
			workers = 16
			rounds  = 2000
		)
		var wg sync.WaitGroup
		stopRead := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
					g.Value() // concurrent reads must be safe
				}
			}
		}()
		var writers sync.WaitGroup
		for w := 0; w < workers; w++ {
			writers.Add(1)
			go func(w int) {
				defer writers.Done()
				for i := 0; i < rounds; i++ {
					g.Add(w, 2)
					g.Add(w+i, 1) // colliding slot traffic
					g.Add(w+i, -1)
					g.Add(w, -2)
				}
			}(w)
		}
		writers.Wait()
		close(stopRead)
		wg.Wait()
	})
	if v := g.Value(); v != 0 {
		t.Fatalf("after balanced concurrent updates: sum = %d, want 0", v)
	}
}

func TestDisabledPathIsNoop(t *testing.T) {
	c := NewCounter("test_disabled_total")
	h := NewHistogram("test_disabled_hist")
	if Enabled() {
		t.Fatal("metrics enabled at test start; tests assume the default-off state")
	}
	c.Inc()
	c.Add(100)
	h.Observe(time.Second)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled instruments recorded: counter=%d hist=%d", c.Value(), h.Count())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("test_hist")
	withEnabled(t, func() {
		// 90 fast observations and 10 slow ones: p50 must land in the fast
		// band, p99 in the slow band, and both are conservative (upper
		// bucket bound) so >= the true value.
		for i := 0; i < 90; i++ {
			h.Observe(50 * time.Microsecond)
		}
		for i := 0; i < 10; i++ {
			h.Observe(80 * time.Millisecond)
		}
	})
	if n := h.Count(); n != 100 {
		t.Fatalf("count = %d, want 100", n)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 50*time.Microsecond || p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want in [50µs, 1ms]", p50)
	}
	if p99 < 80*time.Millisecond || p99 > 2*time.Second {
		t.Fatalf("p99 = %v, want in [80ms, 2s]", p99)
	}
	if p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
}

func TestHistogramOverflowAndNegative(t *testing.T) {
	h := NewHistogram("test_hist_edges")
	withEnabled(t, func() {
		h.Observe(-time.Second)     // clamps to 0
		h.Observe(time.Hour)        // overflow bucket
		h.Observe(30 * time.Minute) // overflow bucket
	})
	if n := h.Count(); n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
	// Overflow quantiles report the tracked max, not a bucket bound.
	if q := h.Quantile(1.0); q != time.Hour {
		t.Fatalf("q1.0 = %v, want 1h (tracked max)", q)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	c := &Counter{name: "c"}
	h := &Histogram{name: "h"}
	r.register("c_total", c)
	r.register("h_latency", h)
	withEnabled(t, func() {
		c.Add(3)
		h.Observe(time.Millisecond)
	})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded["c_total"].(float64) != 3 {
		t.Fatalf("c_total = %v, want 3", decoded["c_total"])
	}
	hist, ok := decoded["h_latency"].(map[string]any)
	if !ok {
		t.Fatalf("h_latency is %T, want object", decoded["h_latency"])
	}
	for _, k := range []string{"count", "avg_us", "p50_us", "p90_us", "p99_us", "max_us"} {
		if _, ok := hist[k]; !ok {
			t.Fatalf("histogram snapshot missing %q: %v", k, hist)
		}
	}
}

func TestHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("handler body not JSON: %v", err)
	}
}

// TestConcurrentUpdates hammers one instrument of each kind from many
// goroutines; run with -race this is the memory-safety proof for the
// lock-free paths.
func TestConcurrentUpdates(t *testing.T) {
	c := NewCounter("test_conc_total")
	g := NewGauge("test_conc_gauge")
	h := NewHistogram("test_conc_hist")
	withEnabled(t, func() {
		const workers, each = 8, 1000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					c.Inc()
					g.Add(1)
					h.Observe(time.Duration(i) * time.Microsecond)
				}
			}(w)
		}
		wg.Wait()
		if c.Value() != workers*each {
			t.Errorf("counter = %d, want %d", c.Value(), workers*each)
		}
		if h.Count() != workers*each {
			t.Errorf("hist count = %d, want %d", h.Count(), workers*each)
		}
	})
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewCounter("test_dup_total")
	NewCounter("test_dup_total")
}
