// Package metrics is the runtime's observability substrate: atomic
// counters, gauges, and fixed-bucket latency histograms, collected in a
// process-wide registry that snapshots to expvar-style JSON. Every hot
// layer (group leader, member, transport, faultnet, queue) registers its
// instruments here at init, so one snapshot covers the whole pipeline —
// the join/rekey/ack cost curves that group-communication surveys (Xu
// arXiv:2010.05692, Malik arXiv:1211.3502) identify as the dominant load
// of real deployments.
//
// Collection is off by default and gated by a single package-level atomic
// flag: a disabled instrument costs one atomic load and a predicted
// branch, so the protocol hot paths carry no measurable overhead until an
// operator opts in (enclaved -metrics-addr, tests, or benchmarks calling
// Enable).
package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// on gates every instrument. Disabled instruments drop updates on the
// floor after one atomic load, which is the "near-zero-cost disabled
// path": no locks, no allocation, no pointer chase.
var on atomic.Bool

// Enable turns collection on process-wide.
func Enable() { on.Store(true) }

// Disable turns collection off; existing values are retained (snapshot
// still reports them) but updates stop.
func Disable() { on.Store(false) }

// Enabled reports whether collection is on.
func Enabled() bool { return on.Load() }

// Counter is a monotonically increasing uint64.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if on.Load() {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if on.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) snapshotValue() any { return c.v.Load() }

// Gauge is an instantaneous int64 (depths, sizes, membership counts).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if on.Load() {
		g.v.Store(v)
	}
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if on.Load() {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) snapshotValue() any { return g.v.Load() }

// StripedGauge is a Gauge whose updates are spread across cache-line-padded
// slots so concurrent writers (fan-out workers, per-shard bookkeeping) never
// contend on one atomic. The aggregate stays exact — every Add lands wholly
// in one slot and Value sums all slots — it is only the *contention* that is
// sharded, not the arithmetic. Callers pick a slot (any int; it is masked to
// the stripe count); pairing each increment with a decrement on the same
// slot is not required for exactness, only for per-slot interpretability.
type StripedGauge struct {
	name  string
	slots []gaugeSlot
	mask  int
}

// gaugeSlot pads each atomic to its own cache line (64B on the platforms we
// care about) so striped writers do not false-share.
type gaugeSlot struct {
	v atomic.Int64
	_ [56]byte
}

// NewStripedGauge registers a striped gauge with Default. The stripe count
// is rounded up to a power of two so slot selection is a mask, not a mod.
func NewStripedGauge(name string, stripes int) *StripedGauge {
	n := 1
	for n < stripes {
		n <<= 1
	}
	g := &StripedGauge{name: name, slots: make([]gaugeSlot, n), mask: n - 1}
	Default.register(name, g)
	return g
}

// Add adds delta to the slot's stripe (negative to decrement). Slot may be
// any non-negative int; it is masked to the stripe count.
func (g *StripedGauge) Add(slot int, delta int64) {
	if on.Load() {
		g.slots[slot&g.mask].v.Add(delta)
	}
}

// Value returns the sum across all stripes. Each slot is read atomically;
// under concurrent updates the sum is a linearizable-enough snapshot for
// monitoring (the same guarantee expvar offers).
func (g *StripedGauge) Value() int64 {
	var sum int64
	for i := range g.slots {
		sum += g.slots[i].v.Load()
	}
	return sum
}

// Stripes returns the number of slots (a power of two).
func (g *StripedGauge) Stripes() int { return len(g.slots) }

func (g *StripedGauge) snapshotValue() any { return g.Value() }

// Histogram is a fixed-bucket latency histogram. Buckets are exponential
// powers of two from 8µs to ~8.6s, which spans AEAD sealing (~µs) through
// chaos-soak ack round trips (~s) without configuration. All updates are
// lock-free atomics; quantiles are estimated from the bucket the target
// rank lands in (upper bound), so p50/p99 are conservative to within one
// bucket width.
type Histogram struct {
	name   string
	counts [histBuckets + 1]atomic.Uint64 // last bucket = overflow
	count  atomic.Uint64
	sumNS  atomic.Uint64
	maxNS  atomic.Uint64
}

// histBuckets bounds: bucket i holds observations <= histLow << i.
const (
	histBuckets = 21
	histLowNS   = 8 << 10 // 8192ns ≈ 8µs
)

// bucketBound returns the inclusive upper bound of bucket i in ns.
func bucketBound(i int) uint64 { return histLowNS << uint(i) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if !on.Load() {
		return
	}
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	i := 0
	for i < histBuckets && ns > bucketBound(i) {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket containing that rank; zero with no observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i <= histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i == histBuckets {
				return time.Duration(h.maxNS.Load())
			}
			return time.Duration(bucketBound(i))
		}
	}
	return time.Duration(h.maxNS.Load())
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	AvgUS float64 `json:"avg_us"`
	P50US float64 `json:"p50_us"`
	P90US float64 `json:"p90_us"`
	P99US float64 `json:"p99_us"`
	MaxUS float64 `json:"max_us"`
}

func (h *Histogram) snapshotValue() any {
	count := h.count.Load()
	var avg float64
	if count > 0 {
		avg = float64(h.sumNS.Load()) / float64(count) / 1e3
	}
	return HistogramSnapshot{
		Count: count,
		AvgUS: avg,
		P50US: float64(h.Quantile(0.50)) / 1e3,
		P90US: float64(h.Quantile(0.90)) / 1e3,
		P99US: float64(h.Quantile(0.99)) / 1e3,
		MaxUS: float64(h.maxNS.Load()) / 1e3,
	}
}

// instrument is anything the registry can snapshot.
type instrument interface{ snapshotValue() any }

// Registry holds named instruments. The zero value is unusable; use
// NewRegistry or the package-level Default.
type Registry struct {
	mu   sync.RWMutex
	inst map[string]instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{inst: make(map[string]instrument)} }

// Default is the process-wide registry the package-level constructors
// register into and enclaved serves.
var Default = NewRegistry()

func (r *Registry) register(name string, in instrument) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.inst[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate instrument %q", name))
	}
	r.inst[name] = in
}

// NewCounter registers a counter with Default. Call at package init; a
// duplicate name panics.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	Default.register(name, c)
	return c
}

// NewGauge registers a gauge with Default.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	Default.register(name, g)
	return g
}

// NewHistogram registers a latency histogram with Default.
func NewHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	Default.register(name, h)
	return h
}

// Snapshot returns every instrument's current value keyed by name.
// Counters and gauges snapshot to integers, histograms to
// HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.inst))
	for name, in := range r.inst {
		out[name] = in.snapshotValue()
	}
	return out
}

// Names returns the registered instrument names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.inst))
	for n := range r.inst {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON (expvar-style: one flat
// object, stable key order via encoding/json's map sorting).
func (r *Registry) WriteJSON(w interface{ Write([]byte) (int, error) }) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// Handler serves Default's snapshot as application/json.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		Default.WriteJSON(w)
	})
}
