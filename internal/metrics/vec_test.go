package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterVec(t *testing.T) {
	Enable()
	defer Disable()
	v := NewCounterVec("test_vec_counter_total")
	v.With("g0").Inc()
	v.With("g0").Add(2)
	v.With("g1").Inc()
	if got := v.With("g0").Value(); got != 3 {
		t.Errorf("g0 = %d, want 3", got)
	}
	if got := v.With("g1").Value(); got != 1 {
		t.Errorf("g1 = %d, want 1", got)
	}
	// The same label always resolves to the same child.
	if v.With("g0") != v.With("g0") {
		t.Error("With returned distinct children for one label")
	}
	snap := v.snapshotValue().(map[string]uint64)
	if snap["g0"] != 3 || snap["g1"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	// Remove drops state; recreation starts from zero.
	v.Remove("g0")
	if got := v.Labels(); got != 1 {
		t.Errorf("Labels after Remove = %d, want 1", got)
	}
	if got := v.With("g0").Value(); got != 0 {
		t.Errorf("recreated child = %d, want 0", got)
	}
}

func TestGaugeVec(t *testing.T) {
	Enable()
	defer Disable()
	v := NewGaugeVec("test_vec_gauge")
	v.With("a").Set(7)
	v.With("b").Add(-2)
	if got := v.With("a").Value(); got != 7 {
		t.Errorf("a = %d, want 7", got)
	}
	snap := v.snapshotValue().(map[string]int64)
	if snap["a"] != 7 || snap["b"] != -2 {
		t.Errorf("snapshot = %v", snap)
	}
	v.Remove("a")
	v.Remove("a") // idempotent
	if got := v.Labels(); got != 1 {
		t.Errorf("Labels = %d, want 1", got)
	}
}

// TestVecSnapshotNested checks the registry snapshot embeds families as
// nested objects keyed by label.
func TestVecSnapshotNested(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()
	v := &CounterVec{name: "tenant_joins_total", children: make(map[string]*Counter)}
	r.register(v.name, v)
	v.With("alpha").Add(5)
	v.With("beta").Inc()

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out map[string]map[string]uint64
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("snapshot JSON: %v\n%s", err, sb.String())
	}
	if out["tenant_joins_total"]["alpha"] != 5 || out["tenant_joins_total"]["beta"] != 1 {
		t.Errorf("nested snapshot = %v", out)
	}
}

// TestVecConcurrent hammers With/Remove/snapshot from many goroutines; the
// -race run is the assertion.
func TestVecConcurrent(t *testing.T) {
	Enable()
	defer Disable()
	v := &CounterVec{name: "test_vec_race", children: make(map[string]*Counter)}
	labels := []string{"g0", "g1", "g2", "g3"}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				label := labels[(i+j)%len(labels)]
				v.With(label).Inc()
				if j%97 == 0 {
					v.Remove(label)
				}
				if j%31 == 0 {
					_ = v.snapshotValue()
				}
			}
		}(i)
	}
	wg.Wait()
}
