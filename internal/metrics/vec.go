// Labeled instrument families for the multi-tenant daemon: one registered
// name fans out into per-label children (one per group/tenant), so a single
// /metrics snapshot distinguishes tenants without a registry entry per
// group. Children are created on first use and removed when their tenant is
// garbage-collected, keeping the family's footprint proportional to *live*
// groups rather than every group ever seen.
package metrics

import "sync"

// CounterVec is a family of Counters keyed by a label value.
type CounterVec struct {
	name string

	mu       sync.RWMutex
	children map[string]*Counter
}

// NewCounterVec registers a labeled counter family with Default.
func NewCounterVec(name string) *CounterVec {
	v := &CounterVec{name: name, children: make(map[string]*Counter)}
	Default.register(name, v)
	return v
}

// With returns the child counter for label, creating it on first use. The
// steady-state path is one RLock and a map probe; creation takes the write
// lock with a double-check so racing firsts converge on one child.
func (v *CounterVec) With(label string) *Counter {
	v.mu.RLock()
	c := v.children[label]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[label]; c == nil {
		c = &Counter{name: v.name + "{" + label + "}"}
		v.children[label] = c
	}
	return c
}

// Remove drops the child for label (tenant GC). A later With recreates it
// from zero.
func (v *CounterVec) Remove(label string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.children, label)
}

// Labels returns the number of live children.
func (v *CounterVec) Labels() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.children)
}

func (v *CounterVec) snapshotValue() any {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.children))
	for label, c := range v.children {
		out[label] = c.Value()
	}
	return out
}

// GaugeVec is a family of Gauges keyed by a label value.
type GaugeVec struct {
	name string

	mu       sync.RWMutex
	children map[string]*Gauge
}

// NewGaugeVec registers a labeled gauge family with Default.
func NewGaugeVec(name string) *GaugeVec {
	v := &GaugeVec{name: name, children: make(map[string]*Gauge)}
	Default.register(name, v)
	return v
}

// With returns the child gauge for label, creating it on first use.
func (v *GaugeVec) With(label string) *Gauge {
	v.mu.RLock()
	g := v.children[label]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[label]; g == nil {
		g = &Gauge{name: v.name + "{" + label + "}"}
		v.children[label] = g
	}
	return g
}

// Remove drops the child for label (tenant GC).
func (v *GaugeVec) Remove(label string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.children, label)
}

// Labels returns the number of live children.
func (v *GaugeVec) Labels() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.children)
}

func (v *GaugeVec) snapshotValue() any {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.children))
	for label, g := range v.children {
		out[label] = g.Value()
	}
	return out
}
