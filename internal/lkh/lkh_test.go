package lkh

import (
	"fmt"
	"math"
	"testing"

	"enclaves/internal/crypto"
)

func mustJoin(t *testing.T, tree *Tree, user string) {
	t.Helper()
	if err := tree.Join(user); err != nil {
		t.Fatalf("join %s: %v", user, err)
	}
}

func rotate(t *testing.T, tree *Tree) []Update {
	t.Helper()
	ups, err := tree.RotateDirty()
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	return ups
}

// memberKeys simulates the member side: starting from the member's path
// entries, apply a stream of updates exactly as the runtime does (open the
// box for a node if we hold the Under key, version-gated).
type memberKeys map[NodeID]Entry

func pathState(t *testing.T, tree *Tree, user string) memberKeys {
	t.Helper()
	path, ok := tree.Path(user)
	if !ok {
		t.Fatalf("no path for %s", user)
	}
	mk := make(memberKeys)
	for _, e := range path {
		mk[e.Node] = e
	}
	return mk
}

// apply consumes the updates a member holding mk can open, returning how
// many it absorbed.
func (mk memberKeys) apply(ups []Update) int {
	n := 0
	for _, u := range ups {
		under, ok := mk[u.Under]
		if !ok || !under.Key.Equal(u.SealKey) {
			continue
		}
		if cur, ok := mk[u.Node]; ok && cur.Ver >= u.Ver {
			continue
		}
		mk[u.Node] = Entry{Node: u.Node, Ver: u.Ver, Key: u.NewKey}
		n++
	}
	return n
}

func TestJoinRotateDeliversPathToEveryone(t *testing.T) {
	tree, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	users := []string{"a", "b", "c", "d", "e", "f", "g"}
	states := map[string]memberKeys{}
	for _, u := range users {
		mustJoin(t, tree, u)
		// Existing members absorb the rotation updates; the joiner is
		// handed its path afterward (immediate-rekey order).
		ups := rotate(t, tree)
		if len(ups) == 0 {
			t.Fatalf("join %s produced no updates", u)
		}
		if !ups[len(ups)-1].Root {
			t.Fatalf("last update after join %s is not the root rotation", u)
		}
		for _, s := range states {
			s.apply(ups)
		}
		states[u] = pathState(t, tree, u)

		// Every member must now hold the current root (group) key.
		for m, s := range states {
			e, ok := s[tree.RootID()]
			if !ok || !e.Key.Equal(tree.RootKey()) {
				t.Fatalf("after join %s: member %s lacks current group key", u, m)
			}
		}
	}
	if tree.Size() != len(users) {
		t.Fatalf("size = %d, want %d", tree.Size(), len(users))
	}
}

func TestLeaveForwardSecrecy(t *testing.T) {
	tree, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	users := []string{"a", "b", "c", "d", "e"}
	states := map[string]memberKeys{}
	for _, u := range users {
		mustJoin(t, tree, u)
		ups := rotate(t, tree)
		for _, s := range states {
			s.apply(ups)
		}
		states[u] = pathState(t, tree, u)
	}

	departed := states["c"]
	if !tree.Remove("c") {
		t.Fatal("remove c: not present")
	}
	delete(states, "c")
	ups := rotate(t, tree)

	// The departed member keeps its pre-departure knowledge and sees every
	// ciphertext; it must not be able to open any update (no update may be
	// sealed under a key it holds).
	if n := departed.apply(ups); n != 0 {
		t.Fatalf("departed member absorbed %d post-departure updates", n)
	}
	if e, ok := departed[tree.RootID()]; ok && e.Key.Equal(tree.RootKey()) {
		t.Fatal("departed member holds the post-departure group key")
	}

	// Every remaining member converges on the new group key.
	for m, s := range states {
		s.apply(ups)
		e, ok := s[tree.RootID()]
		if !ok || !e.Key.Equal(tree.RootKey()) {
			t.Fatalf("surviving member %s lacks post-departure group key", m)
		}
	}
}

func TestJoinBackwardSecrecy(t *testing.T) {
	tree, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"a", "b", "c", "d"} {
		mustJoin(t, tree, u)
		rotate(t, tree)
	}
	oldRoot := tree.RootKey()

	mustJoin(t, tree, "newcomer")
	// Immediate-rekey join: the joiner starts from only its fresh leaf and
	// must reconstruct its whole new path from the child-sealed updates —
	// without ever learning the pre-join group key.
	id, key, ok := tree.Leaf("newcomer")
	if !ok {
		t.Fatal("no leaf for newcomer")
	}
	joiner := memberKeys{id: {Node: id, Ver: 1, Key: key}}
	ups := rotate(t, tree)
	joiner.apply(ups)

	e, ok := joiner[tree.RootID()]
	if !ok {
		t.Fatal("joiner did not learn the group key from its branch updates")
	}
	if !e.Key.Equal(tree.RootKey()) {
		t.Fatal("joiner learned a stale group key")
	}
	if e.Key.Equal(oldRoot) {
		t.Fatal("group key did not change on join")
	}
	for nid, entry := range joiner {
		_ = nid
		if entry.Key.Equal(oldRoot) {
			t.Fatal("joiner holds the pre-join group key")
		}
	}
}

func TestRotationCostLogarithmic(t *testing.T) {
	const n = 4096
	arity := 4
	tree, err := New(arity)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mustJoin(t, tree, fmt.Sprintf("m%05d", i))
	}
	rotate(t, tree) // settle the bulk-join dirt

	if !tree.Remove("m02048") {
		t.Fatal("remove failed")
	}
	ups := rotate(t, tree)
	// One departure rotates one path: at most arity seals per level, with
	// slack for the one extra level unbalanced insertion can add.
	maxSeals := arity * (int(math.Ceil(math.Log(float64(n))/math.Log(float64(arity)))) + 2)
	if len(ups) > maxSeals {
		t.Fatalf("leave rekey cost %d seals at n=%d, want <= %d (O(log n))", len(ups), n, maxSeals)
	}
	if len(ups) < 2 {
		t.Fatalf("suspiciously few updates: %d", len(ups))
	}

	// Recipient count: ~every member gets the root update, so total
	// deliveries stay O(n), while seal count stays O(log n).
	total := 0
	for _, u := range ups {
		total += len(u.Members)
	}
	if total < n-1 {
		t.Fatalf("rotation reached only %d of %d member-deliveries", total, n-1)
	}
}

func TestTreeDepthBalanced(t *testing.T) {
	const n = 1024
	tree, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mustJoin(t, tree, fmt.Sprintf("m%04d", i))
	}
	maxDepth := 0
	for _, u := range tree.Members() {
		p, _ := tree.Path(u)
		if len(p) > maxDepth {
			maxDepth = len(p)
		}
	}
	// ceil(log_4 1024) = 5 internal levels + leaf; allow slack for the
	// demotion scheme's one extra level.
	if maxDepth > 8 {
		t.Fatalf("max path length %d at n=%d, tree is degenerate", maxDepth, n)
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	tree, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"a", "b", "c", "d", "e", "f"} {
		mustJoin(t, tree, u)
	}
	rotate(t, tree)
	tree.Remove("b")
	rotate(t, tree)

	recs := tree.Records()
	rebuilt, err := FromRecords(tree.Arity(), recs)
	if err != nil {
		t.Fatalf("FromRecords: %v", err)
	}
	if rebuilt.Size() != tree.Size() {
		t.Fatalf("size %d != %d", rebuilt.Size(), tree.Size())
	}
	if !rebuilt.RootKey().Equal(tree.RootKey()) {
		t.Fatal("root key lost in round trip")
	}
	if rebuilt.RootID() != tree.RootID() {
		t.Fatal("root ID lost in round trip")
	}
	for _, u := range tree.Members() {
		want, _ := tree.Path(u)
		got, ok := rebuilt.Path(u)
		if !ok || len(got) != len(want) {
			t.Fatalf("path for %s lost: got %d entries, want %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i].Node != want[i].Node || got[i].Ver != want[i].Ver || !got[i].Key.Equal(want[i].Key) {
				t.Fatalf("path entry %d for %s differs", i, u)
			}
		}
	}

	// The rebuilt tree keeps working: a join and a rotation succeed and
	// allocate a fresh node ID (no reuse).
	before := rebuilt.RootVer()
	mustJoin(t, rebuilt, "g")
	if _, err := rebuilt.RotateDirty(); err != nil {
		t.Fatal(err)
	}
	if rebuilt.RootVer() <= before {
		t.Fatal("rebuilt tree did not rotate")
	}
}

func TestFromRecordsRejectsMalformed(t *testing.T) {
	k := func() crypto.Key {
		key, err := crypto.NewKey()
		if err != nil {
			t.Fatal(err)
		}
		return key
	}
	cases := map[string][]Record{
		"no root":       {{ID: 1, Parent: 2, Ver: 1, Key: k()}, {ID: 2, Parent: 1, Ver: 1, Key: k()}},
		"two roots":     {{ID: 1, Ver: 1, Key: k()}, {ID: 2, Ver: 1, Key: k()}},
		"dup node":      {{ID: 1, Ver: 1, Key: k()}, {ID: 1, Ver: 1, Key: k()}},
		"missing key":   {{ID: 1, Ver: 1}},
		"orphan parent": {{ID: 1, Ver: 1, Key: k()}, {ID: 2, Parent: 9, Ver: 1, Key: k()}},
		"leaf parent": {
			{ID: 1, Ver: 1, Key: k()},
			{ID: 2, Parent: 1, Ver: 1, User: "a", Key: k()},
			{ID: 3, Parent: 2, Ver: 1, User: "b", Key: k()},
		},
		"dup member": {
			{ID: 1, Ver: 1, Key: k()},
			{ID: 2, Parent: 1, Ver: 1, User: "a", Key: k()},
			{ID: 3, Parent: 1, Ver: 1, User: "a", Key: k()},
		},
	}
	for name, recs := range cases {
		if _, err := FromRecords(2, recs); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDrainChanges(t *testing.T) {
	tree, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	tree.DrainChanges() // drop the root creation record

	mustJoin(t, tree, "a")
	mustJoin(t, tree, "b")
	ups, rem := tree.DrainChanges()
	if len(rem) != 0 {
		t.Fatalf("unexpected removals: %v", rem)
	}
	if len(ups) == 0 {
		t.Fatal("joins produced no change records")
	}
	seen := map[string]bool{}
	for _, r := range ups {
		if r.User != "" {
			seen[r.User] = true
		}
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("leaf records missing from drain: %v", ups)
	}

	rotate(t, tree)
	ups, _ = tree.DrainChanges()
	if len(ups) == 0 {
		t.Fatal("rotation produced no change records")
	}

	tree.Remove("a")
	ups, rem = tree.DrainChanges()
	if len(rem) == 0 {
		t.Fatal("removal produced no removed IDs")
	}
	_ = ups

	// Drained changes replayed onto a snapshot reproduce the tree.
	if _, err := FromRecords(2, tree.Records()); err != nil {
		t.Fatalf("records after churn do not rebuild: %v", err)
	}
}

func TestRemoveLastMemberKeepsRoot(t *testing.T) {
	tree, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	mustJoin(t, tree, "solo")
	rotate(t, tree)
	if !tree.Remove("solo") {
		t.Fatal("remove failed")
	}
	ups := rotate(t, tree)
	// Nobody to deliver to, but the root must survive and rotate.
	for _, u := range ups {
		if len(u.Members) != 0 {
			t.Fatalf("update addressed to %v in an empty group", u.Members)
		}
	}
	if tree.Size() != 0 {
		t.Fatal("size not zero")
	}
	mustJoin(t, tree, "next")
	if _, err := tree.RotateDirty(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tree.Path("next"); !ok {
		t.Fatal("rejoin after emptying the tree failed")
	}
}

func TestJoinDuplicateRejected(t *testing.T) {
	tree, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	mustJoin(t, tree, "a")
	if err := tree.Join("a"); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if tree.Remove("ghost") {
		t.Fatal("removed a member that never joined")
	}
}
