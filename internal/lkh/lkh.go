// Package lkh implements the logical key hierarchy (LKH) that cuts a
// membership rekey from O(n) to O(log n) re-seals (Wallner/Wong key trees;
// see Malik 2012 for the survey the design follows).
//
// The tree is k-ary. Every member owns one leaf; an internal node's key is
// shared by exactly the members below it; the root key IS the group key.
// A member therefore holds the ~log_k(n) keys on its leaf-to-root path and
// nothing else. When membership changes, only the keys on the affected
// path must rotate, and each rotated key can be delivered with one seal
// per child subtree — the members of a subtree already share the child's
// key, so a single ciphertext serves the whole subtree.
//
// The package is purely the key-tree bookkeeping: placement, pruning,
// versioned rotation, and the description of which new key must be sealed
// under which existing key for which members. Actually sealing and
// delivering the updates is the caller's job (internal/group), which keeps
// this package free of wire and transport concerns and lets rotations be
// computed under the leader lock while seals happen off it.
//
// Rotation strategy. Mutations only mark the affected path dirty;
// RotateDirty later rotates the closure of all dirty nodes (always
// including the root, so every rotation yields a fresh group key) from the
// leaves upward. Every rotated node is re-sealed under each child's
// CURRENT key — for a child that itself just rotated, that is its NEW key.
// Child-sealing is the uniformly safe choice:
//
//   - forward secrecy: a departed member's whole path is dirty, so every
//     key it knew rotates, and each rotated key is sealed only under child
//     keys the departed member never held (its own branch rotated first,
//     bottom-up, to a key it cannot open);
//   - backward secrecy: a joiner opens exactly its own branch — the update
//     for its parent is sealed under its fresh leaf key, the grandparent
//     under the parent's NEW key, and so on up to the root — and learns
//     only post-join keys.
//
// Nodes carry a version, bumped on every rotation, so updates are
// idempotent and order-insensitive on the receiving side (last writer by
// version wins); a member that misses updates resynchronizes out of band.
package lkh

import (
	"errors"
	"fmt"
	"sort"

	"enclaves/internal/crypto"
)

// NodeID identifies a tree node. IDs are never reused within a tree, so a
// stale update can never alias a new node.
type NodeID uint64

// DefaultArity is the branching factor used when none is configured.
// Degree 4 balances tree depth (log_4 65536 = 8) against the k seals each
// rotated node costs.
const DefaultArity = 4

// Update describes one rotated key for delivery: node Node now has NewKey
// (version Ver), and the ciphertext for the members below child Under must
// be sealed under SealKey (Under's current key). Root marks the rotation
// of the root — its NewKey is the new group key.
type Update struct {
	Node    NodeID
	Ver     uint64
	NewKey  crypto.Key
	Under   NodeID
	SealKey crypto.Key
	Members []string
	Root    bool
}

// Entry is one node of a member's path: the node, its current version, and
// its current key. PathKeys messages carry these.
type Entry struct {
	Node NodeID
	Ver  uint64
	Key  crypto.Key
}

// Record is the replication form of one node. Parent is zero for the root.
// Leaves carry the owning member in User. Dirty records a rotation still
// owed to this node — it must replicate so a promoted standby rotates
// exactly the paths the crashed primary had pending (a departure inside the
// coalescing window leaves its surviving ancestors dirty; losing that fact
// to the crash would let the departed member keep opening rotations sealed
// under ancestor keys it held).
type Record struct {
	ID     NodeID
	Parent NodeID
	Ver    uint64
	User   string
	Key    crypto.Key
	Dirty  bool
}

type node struct {
	id       NodeID
	ver      uint64
	key      crypto.Key
	parent   *node
	children []*node
	user     string // leaf: owning member; internal: ""
	size     int    // members in this subtree
}

// Tree is the leader's key tree. It is not safe for concurrent use; the
// caller serializes access (the group leader mutates it under Leader.mu).
type Tree struct {
	arity  int
	nextID NodeID
	root   *node
	leaves map[string]*node
	nodes  map[NodeID]*node
	dirty  map[NodeID]*node

	// Change log since the last DrainChanges, for replication deltas.
	changed map[NodeID]bool
	removed []NodeID
}

// New returns an empty tree with the given branching factor (DefaultArity
// if arity < 2). The root is created eagerly with a fresh key: a group of
// zero or one members still has a well-defined group key.
func New(arity int) (*Tree, error) {
	if arity < 2 {
		arity = DefaultArity
	}
	t := &Tree{
		arity:   arity,
		leaves:  make(map[string]*node),
		nodes:   make(map[NodeID]*node),
		dirty:   make(map[NodeID]*node),
		changed: make(map[NodeID]bool),
	}
	root, err := t.newNode(nil, "")
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// Arity returns the branching factor.
func (t *Tree) Arity() int { return t.arity }

// Size returns the number of members in the tree.
func (t *Tree) Size() int { return t.root.size }

// RootID returns the root node's ID.
func (t *Tree) RootID() NodeID { return t.root.id }

// RootKey returns the current root key — the group key.
func (t *Tree) RootKey() crypto.Key { return t.root.key }

// RootVer returns the root key's version.
func (t *Tree) RootVer() uint64 { return t.root.ver }

func (t *Tree) newNode(parent *node, user string) (*node, error) {
	key, err := crypto.NewKey()
	if err != nil {
		return nil, fmt.Errorf("lkh: node key: %w", err)
	}
	t.nextID++
	n := &node{id: t.nextID, ver: 1, key: key, parent: parent, user: user}
	t.nodes[n.id] = n
	t.changed[n.id] = true
	return n, nil
}

// Join places a new leaf for user with a fresh leaf key and marks its path
// dirty; the caller rotates (immediately or at the end of a coalescing
// window) and hands the member its path. The leaf goes under the
// smallest-membership internal node reachable by smallest-child descent;
// when that node is full of leaves, its smallest leaf is demoted under a
// fresh internal node to make room, which keeps the tree within one level
// of balanced without ever moving more than one existing leaf.
func (t *Tree) Join(user string) error {
	if _, ok := t.leaves[user]; ok {
		return fmt.Errorf("lkh: member %q already present", user)
	}
	parent := t.root
	for {
		if len(parent.children) < t.arity {
			break
		}
		child := minChild(parent)
		if child.user != "" {
			// Full of leaves (minChild is a leaf): demote the
			// smallest leaf under a fresh internal node and descend
			// into it.
			internal, err := t.newNode(parent, "")
			if err != nil {
				return err
			}
			internal.size = child.size
			replaceChild(parent, child, internal)
			child.parent = internal
			internal.children = []*node{child}
			t.changed[child.id] = true // reparented
			parent = internal
			break
		}
		parent = child
	}
	leaf, err := t.newNode(parent, user)
	if err != nil {
		return err
	}
	leaf.size = 1
	parent.children = append(parent.children, leaf)
	t.leaves[user] = leaf
	for n := parent; n != nil; n = n.parent {
		n.size++
	}
	t.markPathDirty(leaf)
	return nil
}

func minChild(n *node) *node {
	best := n.children[0]
	for _, c := range n.children[1:] {
		if c.size < best.size {
			best = c
		}
	}
	return best
}

func replaceChild(parent, old, repl *node) {
	for i, c := range parent.children {
		if c == old {
			parent.children[i] = repl
			return
		}
	}
}

// Remove deletes user's leaf, prunes emptied ancestors, and marks the
// surviving path dirty so the next rotation retires every key the departed
// member held. It reports whether the member was present. Single-child
// chains are deliberately not collapsed: correctness needs only that the
// departed member's keys rotate, and restructuring would force extra key
// deliveries for members that did nothing.
func (t *Tree) Remove(user string) bool {
	leaf, ok := t.leaves[user]
	if !ok {
		return false
	}
	delete(t.leaves, user)
	for n := leaf; n != nil; n = n.parent {
		n.size--
	}
	dead := leaf
	for dead.parent != nil && dead.parent != t.root && dead.parent.size == 0 {
		dead = dead.parent
	}
	if p := dead.parent; p != nil {
		p.children = removeChild(p.children, dead)
		t.markPathDirty(p)
	}
	for n := range subtreeNodes(dead) {
		delete(t.nodes, n.id)
		delete(t.dirty, n.id)
		delete(t.changed, n.id)
		t.removed = append(t.removed, n.id)
	}
	return true
}

func removeChild(children []*node, dead *node) []*node {
	for i, c := range children {
		if c == dead {
			return append(children[:i], children[i+1:]...)
		}
	}
	return children
}

func subtreeNodes(n *node) map[*node]bool {
	out := map[*node]bool{n: true}
	var walk func(*node)
	walk = func(x *node) {
		for _, c := range x.children {
			out[c] = true
			walk(c)
		}
	}
	walk(n)
	return out
}

// MarkDirty marks user's path dirty without structural change, scheduling
// it for the next rotation.
func (t *Tree) MarkDirty(user string) bool {
	leaf, ok := t.leaves[user]
	if !ok {
		return false
	}
	t.markPathDirty(leaf)
	return true
}

// markPathDirty marks every INTERNAL node from n (or its parent, if n is a
// leaf) to the root. Leaf keys never rotate — a leaf key is shared with
// exactly one member, so rotating it protects nothing.
func (t *Tree) markPathDirty(n *node) {
	if n.user != "" {
		n = n.parent
	}
	for ; n != nil; n = n.parent {
		t.dirty[n.id] = n
		t.changed[n.id] = true // dirtiness replicates (see Record.Dirty)
	}
}

// Dirty reports whether any rotation is pending.
func (t *Tree) Dirty() bool { return len(t.dirty) > 0 }

// RotateDirty rotates every dirty node plus the root, bottom-up, and
// returns one Update per (rotated node, child) pair — ~k·log_k(n) seals
// for a single-path rotation versus the flat broadcast's n. The dirty set
// is cleared. The last update is always the root's and carries the new
// group key.
func (t *Tree) RotateDirty() ([]Update, error) {
	rotate := make([]*node, 0, len(t.dirty)+1)
	for _, n := range t.dirty {
		rotate = append(rotate, n)
	}
	if _, ok := t.dirty[t.root.id]; !ok {
		rotate = append(rotate, t.root)
	}
	// Bottom-up: deeper nodes first, ties broken by ID for determinism.
	sort.Slice(rotate, func(i, j int) bool {
		di, dj := depth(rotate[i]), depth(rotate[j])
		if di != dj {
			return di > dj
		}
		return rotate[i].id < rotate[j].id
	})
	var updates []Update
	for _, n := range rotate {
		key, err := crypto.NewKey()
		if err != nil {
			return nil, fmt.Errorf("lkh: rotate: %w", err)
		}
		n.key = key
		n.ver++
		t.changed[n.id] = true
		for _, c := range n.children {
			updates = append(updates, Update{
				Node:    n.id,
				Ver:     n.ver,
				NewKey:  n.key,
				Under:   c.id,
				SealKey: c.key,
				Members: membersOf(c),
				Root:    n == t.root,
			})
		}
		// A childless root (empty group) still rotates so the next
		// joiner never sees a pre-departure group key; there is no one
		// to deliver to.
	}
	t.dirty = make(map[NodeID]*node)
	return updates, nil
}

func depth(n *node) int {
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

func membersOf(n *node) []string {
	if n.user != "" {
		return []string{n.user}
	}
	out := make([]string, 0, n.size)
	var walk func(*node)
	walk = func(x *node) {
		if x.user != "" {
			out = append(out, x.user)
			return
		}
		for _, c := range x.children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Path returns user's leaf-to-root path entries (leaf first, root last).
func (t *Tree) Path(user string) ([]Entry, bool) {
	leaf, ok := t.leaves[user]
	if !ok {
		return nil, false
	}
	var out []Entry
	for n := leaf; n != nil; n = n.parent {
		out = append(out, Entry{Node: n.id, Ver: n.ver, Key: n.key})
	}
	return out, true
}

// Leaf returns the ID and key of user's leaf.
func (t *Tree) Leaf(user string) (NodeID, crypto.Key, bool) {
	leaf, ok := t.leaves[user]
	if !ok {
		return 0, crypto.Key{}, false
	}
	return leaf.id, leaf.key, true
}

// Members returns the members in the tree, sorted.
func (t *Tree) Members() []string {
	out := make([]string, 0, len(t.leaves))
	for u := range t.leaves {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Records exports every node for a replication snapshot.
func (t *Tree) Records() []Record {
	out := make([]Record, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, t.record(n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (t *Tree) record(n *node) Record {
	r := Record{ID: n.id, Ver: n.ver, User: n.user, Key: n.key}
	if n.parent != nil {
		r.Parent = n.parent.id
	}
	_, r.Dirty = t.dirty[n.id]
	return r
}

// DrainChanges returns the node records created or modified and the node
// IDs removed since the last drain, for incremental replication.
func (t *Tree) DrainChanges() (upserts []Record, removed []NodeID) {
	for id := range t.changed {
		if n, ok := t.nodes[id]; ok {
			upserts = append(upserts, t.record(n))
		}
	}
	sort.Slice(upserts, func(i, j int) bool { return upserts[i].ID < upserts[j].ID })
	removed = t.removed
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	t.changed = make(map[NodeID]bool)
	t.removed = nil
	return upserts, removed
}

// FromRecords rebuilds a tree from replicated node records, for standby
// promotion. The records must form a single rooted tree.
func FromRecords(arity int, recs []Record) (*Tree, error) {
	if arity < 2 {
		arity = DefaultArity
	}
	if len(recs) == 0 {
		return New(arity)
	}
	t := &Tree{
		arity:   arity,
		leaves:  make(map[string]*node),
		nodes:   make(map[NodeID]*node),
		dirty:   make(map[NodeID]*node),
		changed: make(map[NodeID]bool),
	}
	for _, r := range recs {
		if _, ok := t.nodes[r.ID]; ok {
			return nil, fmt.Errorf("lkh: duplicate node %d", r.ID)
		}
		if !r.Key.Valid() {
			return nil, fmt.Errorf("lkh: node %d has no key", r.ID)
		}
		n := &node{id: r.ID, ver: r.Ver, key: r.Key, user: r.User}
		t.nodes[r.ID] = n
		if r.Dirty && r.User == "" {
			t.dirty[r.ID] = n
		}
		if r.ID > t.nextID {
			t.nextID = r.ID
		}
	}
	for _, r := range recs {
		n := t.nodes[r.ID]
		if r.Parent == 0 {
			if t.root != nil {
				return nil, errors.New("lkh: multiple roots")
			}
			t.root = n
			continue
		}
		p, ok := t.nodes[r.Parent]
		if !ok {
			return nil, fmt.Errorf("lkh: node %d references missing parent %d", r.ID, r.Parent)
		}
		if p.user != "" {
			return nil, fmt.Errorf("lkh: leaf %d used as parent", p.id)
		}
		n.parent = p
		p.children = append(p.children, n)
		if n.user != "" {
			if _, dup := t.leaves[n.user]; dup {
				return nil, fmt.Errorf("lkh: member %q has two leaves", n.user)
			}
			t.leaves[n.user] = n
		}
	}
	if t.root == nil {
		return nil, errors.New("lkh: no root record")
	}
	// Deterministic child order (records arrive sorted by ID, but be
	// explicit), then recompute sizes and reject cycles/forests.
	for _, n := range t.nodes {
		sort.Slice(n.children, func(i, j int) bool { return n.children[i].id < n.children[j].id })
	}
	if !computeSizes(t.root, map[*node]bool{}) {
		return nil, errors.New("lkh: cyclic node records")
	}
	reached := len(subtreeNodes(t.root))
	if reached != len(t.nodes) {
		return nil, fmt.Errorf("lkh: %d of %d nodes unreachable from root", len(t.nodes)-reached, len(t.nodes))
	}
	return t, nil
}

func computeSizes(n *node, seen map[*node]bool) bool {
	if seen[n] {
		return false
	}
	seen[n] = true
	if n.user != "" {
		n.size = 1
		return true
	}
	n.size = 0
	for _, c := range n.children {
		if !computeSizes(c, seen) {
			return false
		}
		n.size += c.size
	}
	return true
}
