package replica

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"enclaves/internal/crypto"
	"enclaves/internal/transport"
	"enclaves/internal/wire"
)

// StandbyConfig configures the standby-side replication endpoint.
type StandbyConfig struct {
	// Standby is this node's name (becomes the promoted leader's name from
	// the members' point of view it does NOT — members resume under the
	// PRIMARY's identity, which the standby assumes at promotion).
	Standby string
	// Primary is the primary leader's name.
	Primary string
	// Key is the pre-shared replication key K_r.
	Key crypto.Key
	// Dial opens a connection to the primary's listener.
	Dial func() (transport.Conn, error)
	// Silence is how long the replication stream may be quiet before the
	// primary is declared dead. The sender's ping deltas keep a healthy
	// stream well under it.
	Silence time.Duration
	// Redial paces re-subscription attempts after a broken stream.
	Redial time.Duration
	// Logf, if non-nil, receives diagnostics.
	Logf func(format string, args ...any)
}

// Standby mirrors the primary's group state over the sealed replication
// channel until the primary goes silent, then exposes the replica for
// promotion. Dead detection is time-since-last-authenticated-frame: chain
// breaks and connection failures trigger re-subscription (fresh snapshot),
// not failover — only sustained silence does.
type Standby struct {
	cfg StandbyConfig

	mu    sync.Mutex
	state State
	seen  bool // at least one snapshot applied

	lastOK  time.Time
	stopped chan struct{}
	dead    chan struct{}
	once    sync.Once
	stopFn  sync.Once
	conn    transport.Conn // current connection, for teardown
}

// NewStandby starts replicating from the primary. The returned Standby's
// Dead channel closes when the primary is declared dead.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.Standby == "" || cfg.Primary == "" {
		return nil, fmt.Errorf("replica: standby and primary names must be non-empty")
	}
	if cfg.Dial == nil {
		return nil, fmt.Errorf("replica: standby needs a Dial function")
	}
	if !cfg.Key.Valid() {
		return nil, fmt.Errorf("replica: invalid replication key")
	}
	if cfg.Silence <= 0 {
		cfg.Silence = 2 * time.Second
	}
	if cfg.Redial <= 0 {
		cfg.Redial = cfg.Silence / 20
		if cfg.Redial <= 0 {
			cfg.Redial = 10 * time.Millisecond
		}
	}
	s := &Standby{
		cfg:     cfg,
		state:   State{Primary: cfg.Primary, Members: make(map[string]Session)},
		lastOK:  time.Now(),
		stopped: make(chan struct{}),
		dead:    make(chan struct{}),
	}
	go s.run()
	return s, nil
}

// Dead closes when the primary has been declared dead; the replicated
// State is then ready for promotion.
func (s *Standby) Dead() <-chan struct{} { return s.dead }

// Synced reports whether at least one snapshot has been applied.
func (s *Standby) Synced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

// State returns a deep copy of the current replica.
func (s *Standby) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Clone()
}

// Stop halts replication without declaring the primary dead.
func (s *Standby) Stop() {
	s.stopFn.Do(func() { close(s.stopped) })
	s.mu.Lock()
	if s.conn != nil {
		_ = s.conn.Close()
	}
	s.mu.Unlock()
}

func (s *Standby) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf("replica[%s<-%s]: "+format, append([]any{s.cfg.Standby, s.cfg.Primary}, args...)...)
	}
}

func (s *Standby) declareDead() {
	s.once.Do(func() {
		mPrimaryDead.Inc()
		s.logf("primary declared dead after %v of silence", s.cfg.Silence)
		close(s.dead)
	})
}

func (s *Standby) stopping() bool {
	select {
	case <-s.stopped:
		return true
	case <-s.dead:
		return true
	default:
		return false
	}
}

// run subscribes, applies the stream, and re-subscribes on any break, until
// stopped or the silence budget since the last authenticated frame runs
// out.
func (s *Standby) run() {
	cipher, err := crypto.NewCipher(s.cfg.Key)
	if err != nil {
		s.logf("cipher: %v", err)
		s.declareDead()
		return
	}
	for !s.stopping() {
		if err := s.subscribeOnce(cipher); err != nil && !s.stopping() {
			s.logf("stream broken: %v", err)
		}
		if s.stopping() {
			return
		}
		s.mu.Lock()
		silentFor := time.Since(s.lastOK)
		s.mu.Unlock()
		if silentFor >= s.cfg.Silence {
			s.declareDead()
			return
		}
		mResubscribes.Inc()
		select {
		case <-time.After(s.cfg.Redial):
		case <-s.stopped:
			return
		}
	}
}

// subscribeOnce dials, sends the hello, and applies the snapshot + delta
// stream until it breaks. A frame watchdog closes the connection when the
// stream has been silent past the remaining silence budget, bounding
// detection latency even when the connection never errors (a severed
// link).
func (s *Standby) subscribeOnce(cipher *crypto.Cipher) error {
	conn, err := s.cfg.Dial()
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
	defer conn.Close()

	// Watchdog: wake periodically; if the silence budget is exhausted, kill
	// the connection so the Recv below unblocks.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		tick := s.cfg.Silence / 10
		if tick <= 0 {
			tick = 10 * time.Millisecond
		}
		for {
			select {
			case <-watchDone:
				return
			case <-s.stopped:
				_ = conn.Close()
				return
			case <-time.After(tick):
				s.mu.Lock()
				silent := time.Since(s.lastOK)
				s.mu.Unlock()
				if silent >= s.cfg.Silence {
					_ = conn.Close()
					return
				}
			}
		}
	}()

	n0, err := crypto.NewNonce()
	if err != nil {
		return err
	}
	hello := wire.Envelope{Type: wire.TypeReplState, Sender: s.cfg.Standby, Receiver: s.cfg.Primary}
	hp := wire.ReplStatePayload{Hello: true, Standby: s.cfg.Standby, Primary: s.cfg.Primary, Next: n0}
	box, err := cipher.Seal(hp.Marshal(), hello.Header())
	if err != nil {
		return err
	}
	hello.Payload = box
	if err := conn.Send(hello); err != nil {
		return fmt.Errorf("send hello: %w", err)
	}

	// First frame back must be the snapshot echoing N0.
	env, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("recv snapshot: %w", err)
	}
	if env.Type != wire.TypeReplState {
		return fmt.Errorf("expected ReplState, got %s", env.Type)
	}
	plain, err := cipher.Open(env.Payload, env.Header())
	if err != nil {
		mChainBreaks.Inc()
		return fmt.Errorf("snapshot: %w", err)
	}
	snap, err := wire.UnmarshalReplState(plain)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if snap.Hello || snap.Primary != s.cfg.Primary || snap.Standby != s.cfg.Standby {
		return errors.New("snapshot names do not match")
	}
	if !snap.Echo.Equal(n0) {
		mChainBreaks.Inc()
		return errors.New("snapshot does not echo our hello nonce")
	}
	st := State{
		Primary:      s.cfg.Primary,
		Epoch:        snap.Epoch,
		GroupKey:     snap.GroupKey,
		AuditSeq:     snap.AuditSeq,
		Members:      make(map[string]Session, len(snap.Members)),
		LKHArity:     int(snap.LKHArity),
		RekeyPending: snap.RekeyPending,
	}
	for _, m := range snap.Members {
		st.Members[m.User] = Session{SessionKey: m.SessionKey, Nonce: m.Nonce, Seq: m.Seq}
	}
	if len(snap.Tree) > 0 {
		st.Tree = make(map[uint64]wire.ReplLKHNode, len(snap.Tree))
		for _, n := range snap.Tree {
			st.Tree[n.ID] = n
		}
	}
	last := snap.Next
	s.mu.Lock()
	s.state = st
	s.seen = true
	s.lastOK = time.Now()
	s.mu.Unlock()
	s.logf("snapshot applied: %d members, epoch %d, audit seq %d", len(st.Members), st.Epoch, st.AuditSeq)

	// Delta stream: each frame must extend the chain.
	for {
		env, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("recv delta: %w", err)
		}
		if env.Type != wire.TypeReplDelta {
			return fmt.Errorf("expected ReplDelta, got %s", env.Type)
		}
		plain, err := cipher.Open(env.Payload, env.Header())
		if err != nil {
			mChainBreaks.Inc()
			return fmt.Errorf("delta: %w", err)
		}
		d, err := wire.UnmarshalReplDelta(plain)
		if err != nil {
			return fmt.Errorf("delta: %w", err)
		}
		if d.Primary != s.cfg.Primary || d.Standby != s.cfg.Standby {
			return errors.New("delta names do not match")
		}
		if !d.Echo.Equal(last) {
			mChainBreaks.Inc()
			return errors.New("delta breaks the nonce chain")
		}
		last = d.Next
		s.mu.Lock()
		s.state.Apply(Delta{
			Kind:     d.Kind,
			AuditSeq: d.AuditSeq,
			User:     d.User,
			Session:  d.Session,
			Nonce:    d.Nonce,
			Seq:      d.Seq,
			Epoch:    d.Epoch,
			GroupKey: d.GroupKey,
			Nodes:    d.Nodes,
			Removed:  d.Removed,
			Pending:  d.Pending,
		})
		s.lastOK = time.Now()
		s.mu.Unlock()
		mDeltasRecv.Inc()
	}
}
