package replica

import (
	"testing"
	"time"

	"enclaves/internal/crypto"
	"enclaves/internal/transport"
	"enclaves/internal/wire"
)

func newTestKey(t *testing.T) crypto.Key {
	t.Helper()
	k, err := crypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestApplyLKHDeltas(t *testing.T) {
	st := State{Primary: "p", Members: make(map[string]Session)}
	k1, k2 := newTestKey(t), newTestKey(t)

	st.Apply(Delta{Kind: wire.ReplLKH, Nodes: []wire.ReplLKHNode{
		{ID: 1, Ver: 1, Key: k1},
		{ID: 2, Parent: 1, Ver: 1, User: "alice", Key: k2},
	}})
	if len(st.Tree) != 2 || st.Tree[2].User != "alice" {
		t.Fatalf("tree after upsert: %+v", st.Tree)
	}

	// Last-writer-wins upsert plus pruning in one delta.
	st.Apply(Delta{Kind: wire.ReplLKH, Nodes: []wire.ReplLKHNode{{ID: 1, Ver: 2, Key: k2}}, Removed: []uint64{2}})
	if len(st.Tree) != 1 || st.Tree[1].Ver != 2 || !st.Tree[1].Key.Equal(k2) {
		t.Fatalf("tree after update+remove: %+v", st.Tree)
	}

	st.Apply(Delta{Kind: wire.ReplRekeyPending, Pending: true})
	if !st.RekeyPending {
		t.Fatal("pending flag not set")
	}
	// A completed rotation settles the window.
	st.Apply(Delta{Kind: wire.ReplRekey, Epoch: 5, GroupKey: k1})
	if st.RekeyPending {
		t.Fatal("rekey did not clear the pending flag")
	}
	if st.Epoch != 5 {
		t.Fatalf("epoch = %d", st.Epoch)
	}
}

func TestCloneDeepCopiesTree(t *testing.T) {
	st := State{
		Members: make(map[string]Session),
		Tree: map[uint64]wire.ReplLKHNode{
			1: {ID: 1, Ver: 1, Key: newTestKey(t)},
		},
		LKHArity:     4,
		RekeyPending: true,
	}
	cp := st.Clone()
	if cp.LKHArity != 4 || !cp.RekeyPending || len(cp.Tree) != 1 {
		t.Fatalf("clone lost tree state: %+v", cp)
	}
	cp.Tree[2] = wire.ReplLKHNode{ID: 2}
	if _, ok := st.Tree[2]; ok {
		t.Fatal("clone shares the tree map")
	}
}

// TestReplicationStreamCarriesTree runs a real Sender against a real Standby
// over a pipe and checks that the LKH tree, arity and armed-window flag
// survive both the snapshot path and the delta path.
func TestReplicationStreamCarriesTree(t *testing.T) {
	kr := newTestKey(t)
	sender, err := NewSender("leader", kr)
	if err != nil {
		t.Fatal(err)
	}

	snap := State{
		Epoch:    3,
		GroupKey: newTestKey(t),
		Members:  map[string]Session{"alice": {SessionKey: newTestKey(t), Seq: 1}},
		LKHArity: 4,
		Tree: map[uint64]wire.ReplLKHNode{
			1: {ID: 1, Ver: 2, Key: newTestKey(t)},
			2: {ID: 2, Parent: 1, Ver: 1, User: "alice", Key: newTestKey(t)},
		},
		RekeyPending: true,
	}

	dial := func() (transport.Conn, error) {
		a, b := transport.Pipe()
		go func() {
			env, err := a.Recv()
			if err != nil {
				return
			}
			standby, n0, err := sender.HandleHello(env)
			if err != nil {
				t.Errorf("hello: %v", err)
				_ = a.Close()
				return
			}
			sender.Attach(a, standby, n0, snap.Clone())
		}()
		return b, nil
	}

	sb, err := NewStandby(StandbyConfig{
		Standby: "standby",
		Primary: "leader",
		Key:     kr,
		Dial:    dial,
		Silence: 5 * time.Second,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Stop()

	waitFor := func(what string, cond func(State) bool) State {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			st := sb.State()
			if cond(st) {
				return st
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s: %+v", what, sb.State())
		return State{}
	}

	st := waitFor("snapshot", func(st State) bool { return len(st.Tree) == 2 })
	if st.LKHArity != 4 || !st.RekeyPending {
		t.Fatalf("snapshot lost arity/pending: %+v", st)
	}
	if st.Tree[2].User != "alice" || !st.Tree[1].Key.Equal(snap.Tree[1].Key) {
		t.Fatalf("snapshot tree mismatch: %+v", st.Tree)
	}

	// A rotation: new node versions plus the epoch bump that settles the
	// armed window.
	newRoot := newTestKey(t)
	sender.Publish(Delta{Kind: wire.ReplLKH, AuditSeq: 1, Nodes: []wire.ReplLKHNode{
		{ID: 1, Ver: 3, Key: newRoot},
	}, Removed: []uint64{2}})
	sender.Publish(Delta{Kind: wire.ReplRekey, AuditSeq: 2, Epoch: 4, GroupKey: newRoot})

	st = waitFor("rotation deltas", func(st State) bool { return st.Epoch == 4 })
	if len(st.Tree) != 1 || st.Tree[1].Ver != 3 || !st.Tree[1].Key.Equal(newRoot) {
		t.Fatalf("delta tree mismatch: %+v", st.Tree)
	}
	if st.RekeyPending {
		t.Fatal("rekey delta did not settle the pending window")
	}

	// Re-arming travels too.
	sender.Publish(Delta{Kind: wire.ReplRekeyPending, AuditSeq: 3, Pending: true})
	waitFor("pending delta", func(st State) bool { return st.RekeyPending })
	sender.Detach()
}
