// Package replica implements the leader-replication channel of the hot
// failover design: a primary leader streams its membership, epoch, group
// key and audit state to one standby in real time, sealed under a
// pre-shared replication key K_r with chained nonces for freshness — the
// same chaining discipline as the verified AdminMsg pipeline, so a
// replayed, reordered or dropped delta breaks the chain and forces the
// standby to re-subscribe for a fresh snapshot.
//
// The package is deliberately below internal/group in the dependency
// order: group attaches a Sender to its serve loop and feeds it deltas;
// the standby process runs a Standby until the primary is declared dead,
// then hands the replicated State to group's promotion path.
package replica

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"enclaves/internal/core"
	"enclaves/internal/crypto"
	"enclaves/internal/metrics"
	"enclaves/internal/queue"
	"enclaves/internal/transport"
	"enclaves/internal/wire"
)

var (
	mDeltasSent   = metrics.NewCounter("replica_deltas_sent_total")
	mDeltasRecv   = metrics.NewCounter("replica_deltas_recv_total")
	mSnapshots    = metrics.NewCounter("replica_snapshots_total")
	mChainBreaks  = metrics.NewCounter("replica_chain_breaks_total")
	mSubDrops     = metrics.NewCounter("replica_subscriber_drops_total")
	mHellosBad    = metrics.NewCounter("replica_bad_hellos_total")
	mPrimaryDead  = metrics.NewCounter("replica_primary_dead_total")
	mResubscribes = metrics.NewCounter("replica_resubscribes_total")
)

// ErrBadHello is returned for a subscription request that fails
// authentication or names the wrong primary.
var ErrBadHello = errors.New("replica: bad subscription hello")

// Session is one member's replicated session state — everything the
// promoted standby needs to resume the session without a password
// re-handshake (see core.SessionState).
type Session struct {
	SessionKey crypto.Key
	Nonce      crypto.Nonce // the member's latest chained nonce
	Seq        uint64       // AdminMsg pipeline sequence
}

// State is the standby's replica of the primary's group state.
type State struct {
	Primary  string
	Epoch    uint64
	GroupKey crypto.Key
	AuditSeq uint64 // primary's audit-trace high-water mark
	Members  map[string]Session

	// LKH key-tree replica, present when the primary rekeys through a
	// logical key hierarchy. Tree maps node ID to its replicated record; a
	// promoted standby rebuilds the tree from it and rotates only the dirty
	// paths instead of cutting a whole new flat key.
	LKHArity int
	Tree     map[uint64]wire.ReplLKHNode

	// RekeyPending records that the primary had armed its rekey-coalescing
	// window but not yet flushed it. A promotion with this flag set owes
	// the group a rotation (and the trigger ledger a coalesced credit):
	// the crash absorbed the pending triggers.
	RekeyPending bool
}

// Clone deep-copies the state.
func (st State) Clone() State {
	out := st
	out.Members = make(map[string]Session, len(st.Members))
	for u, s := range st.Members {
		out.Members[u] = s
	}
	if st.Tree != nil {
		out.Tree = make(map[uint64]wire.ReplLKHNode, len(st.Tree))
		for id, n := range st.Tree {
			out.Tree[id] = n
		}
	}
	return out
}

// Delta is one replicated state change, the in-process form of
// wire.ReplDeltaPayload (the chain nonces are added at sealing time).
type Delta struct {
	Kind     wire.ReplDeltaKind
	AuditSeq uint64

	User     string
	Session  crypto.Key
	Nonce    crypto.Nonce
	Seq      uint64
	Epoch    uint64
	GroupKey crypto.Key

	// ReplLKH fields: tree records changed by a mutation, and node IDs
	// pruned by a departure.
	Nodes   []wire.ReplLKHNode
	Removed []uint64
	// ReplRekeyPending field: whether the coalescing window is armed.
	Pending bool
}

// Apply folds the delta into the state.
func (st *State) Apply(d Delta) {
	if d.AuditSeq > st.AuditSeq {
		st.AuditSeq = d.AuditSeq
	}
	switch d.Kind {
	case wire.ReplMemberUp:
		st.Members[d.User] = Session{SessionKey: d.Session, Nonce: d.Nonce, Seq: d.Seq}
	case wire.ReplMemberDown:
		delete(st.Members, d.User)
	case wire.ReplRekey:
		st.Epoch = d.Epoch
		st.GroupKey = d.GroupKey
		// A completed rotation settles any armed coalescing window.
		st.RekeyPending = false
	case wire.ReplLKH:
		if st.Tree == nil {
			st.Tree = make(map[uint64]wire.ReplLKHNode, len(d.Nodes))
		}
		for _, n := range d.Nodes {
			st.Tree[n.ID] = n
		}
		for _, id := range d.Removed {
			delete(st.Tree, id)
		}
	case wire.ReplRekeyPending:
		st.RekeyPending = d.Pending
	case wire.ReplSessionSync:
		if s, ok := st.Members[d.User]; ok {
			s.Nonce = d.Nonce
			s.Seq = d.Seq
			st.Members[d.User] = s
		}
	case wire.ReplPing:
		// Chain advance only.
	}
}

// SessionState converts a replicated member session into the engine-level
// resume state.
func (st State) SessionState(user string) (core.SessionState, bool) {
	s, ok := st.Members[user]
	if !ok {
		return core.SessionState{}, false
	}
	return core.SessionState{
		User:       user,
		Leader:     st.Primary,
		SessionKey: s.SessionKey,
		Nonce:      s.Nonce,
		Seq:        s.Seq,
	}, true
}

// --- primary side ---

// item is one unit of the sender's outbound queue: a snapshot (queued at
// attach time, so it precedes every later delta) or a delta.
type item struct {
	snap  *State
	delta Delta
}

// subscriber is the attached standby.
type subscriber struct {
	standby string
	conn    transport.Conn
	q       *queue.Queue[item]
	done    chan struct{}
}

// Sender is the primary-side replication endpoint: it authenticates the
// standby's subscription, then streams the snapshot and every subsequent
// delta over the sealed, nonce-chained channel. One subscriber at a time; a
// new subscription replaces the previous one. Publishing never blocks: the
// queue is bounded, and an overflowing (stalled) subscriber is dropped, so
// a dead standby cannot stall the primary — the standby re-subscribes and
// gets a fresh snapshot.
type Sender struct {
	primary string
	cipher  *crypto.Cipher // cached AEAD under K_r
	limit   int

	mu  sync.Mutex
	sub *subscriber
}

// DefaultQueueLimit bounds the subscriber's outbound delta queue.
const DefaultQueueLimit = 4096

// NewSender returns a replication sender for the named primary, sealing
// under the pre-shared replication key.
func NewSender(primary string, key crypto.Key) (*Sender, error) {
	if primary == "" {
		return nil, fmt.Errorf("replica: primary name must be non-empty")
	}
	c, err := crypto.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	return &Sender{primary: primary, cipher: c, limit: DefaultQueueLimit}, nil
}

// HandleHello authenticates a standby's subscription request (the first
// frame of a replication connection). It returns the standby's name and
// chain nonce N0 for Attach.
func (s *Sender) HandleHello(env wire.Envelope) (string, crypto.Nonce, error) {
	if env.Type != wire.TypeReplState {
		mHellosBad.Inc()
		return "", crypto.Nonce{}, fmt.Errorf("%w: got %s", ErrBadHello, env.Type)
	}
	plain, err := s.cipher.Open(env.Payload, env.Header())
	if err != nil {
		mHellosBad.Inc()
		return "", crypto.Nonce{}, fmt.Errorf("%w: %v", ErrBadHello, err)
	}
	p, err := wire.UnmarshalReplState(plain)
	if err != nil {
		mHellosBad.Inc()
		return "", crypto.Nonce{}, fmt.Errorf("%w: %v", ErrBadHello, err)
	}
	if !p.Hello || p.Primary != s.primary || p.Standby == "" {
		mHellosBad.Inc()
		return "", crypto.Nonce{}, fmt.Errorf("%w: hello=%v primary=%q", ErrBadHello, p.Hello, p.Primary)
	}
	return p.Standby, p.Next, nil
}

// Attach installs the subscriber and queues its snapshot. The caller builds
// the snapshot and calls Attach inside the same critical section that
// serializes its delta emissions, so the snapshot linearizes correctly
// against subsequent Publish calls; Attach itself only enqueues — sealing
// and sending happen on the subscriber's writer goroutine.
func (s *Sender) Attach(conn transport.Conn, standby string, n0 crypto.Nonce, snap State) {
	sub := &subscriber{
		standby: standby,
		conn:    conn,
		q:       queue.NewBounded[item](s.limit),
		done:    make(chan struct{}),
	}
	snap.Primary = s.primary
	_ = sub.q.Push(item{snap: &snap})
	s.mu.Lock()
	old := s.sub
	s.sub = sub
	s.mu.Unlock()
	if old != nil {
		s.drop(old, "replaced by new subscription")
	}
	go s.writer(sub, n0)
}

// Publish enqueues one delta for the subscriber, if any. On overflow the
// subscriber is dropped (it will re-subscribe for a fresh snapshot).
func (s *Sender) Publish(d Delta) {
	s.mu.Lock()
	sub := s.sub
	s.mu.Unlock()
	if sub == nil {
		return
	}
	if err := sub.q.Push(item{delta: d}); errors.Is(err, queue.ErrFull) {
		mSubDrops.Inc()
		s.detach(sub)
		s.drop(sub, "queue overflow")
	}
}

// Detach drops the current subscriber, if any (leader shutdown).
func (s *Sender) Detach() {
	s.mu.Lock()
	sub := s.sub
	s.sub = nil
	s.mu.Unlock()
	if sub != nil {
		s.drop(sub, "sender detached")
	}
}

// detach clears sub if it is still the current subscriber.
func (s *Sender) detach(sub *subscriber) {
	s.mu.Lock()
	if s.sub == sub {
		s.sub = nil
	}
	s.mu.Unlock()
}

func (s *Sender) drop(sub *subscriber, reason string) {
	_ = reason
	sub.q.Close()
	_ = sub.conn.Close()
}

// writer drains the subscriber's queue, sealing each item with the next
// link of the nonce chain and writing it to the connection — entirely
// outside the caller's locks.
func (s *Sender) writer(sub *subscriber, n0 crypto.Nonce) {
	last := n0
	for {
		it, err := sub.q.Pop()
		if err != nil {
			return
		}
		next, err := crypto.NewNonce()
		if err != nil {
			s.detach(sub)
			s.drop(sub, "nonce generation failed")
			return
		}
		var env wire.Envelope
		var plain []byte
		if it.snap != nil {
			env = wire.Envelope{Type: wire.TypeReplState, Sender: s.primary, Receiver: sub.standby}
			p := wire.ReplStatePayload{
				Standby:      sub.standby,
				Primary:      s.primary,
				Echo:         last,
				Next:         next,
				Epoch:        it.snap.Epoch,
				GroupKey:     it.snap.GroupKey,
				AuditSeq:     it.snap.AuditSeq,
				LKHArity:     uint8(it.snap.LKHArity),
				RekeyPending: it.snap.RekeyPending,
			}
			for u, m := range it.snap.Members {
				p.Members = append(p.Members, wire.ReplMember{
					User: u, SessionKey: m.SessionKey, Nonce: m.Nonce, Seq: m.Seq,
				})
			}
			for _, n := range it.snap.Tree {
				p.Tree = append(p.Tree, n)
			}
			sort.Slice(p.Tree, func(i, j int) bool { return p.Tree[i].ID < p.Tree[j].ID })
			plain = p.Marshal()
			mSnapshots.Inc()
		} else {
			d := it.delta
			env = wire.Envelope{Type: wire.TypeReplDelta, Sender: s.primary, Receiver: sub.standby}
			p := wire.ReplDeltaPayload{
				Primary:  s.primary,
				Standby:  sub.standby,
				Echo:     last,
				Next:     next,
				Kind:     d.Kind,
				AuditSeq: d.AuditSeq,
				User:     d.User,
				Session:  d.Session,
				Nonce:    d.Nonce,
				Seq:      d.Seq,
				Epoch:    d.Epoch,
				GroupKey: d.GroupKey,
				Nodes:    d.Nodes,
				Removed:  d.Removed,
				Pending:  d.Pending,
			}
			plain = p.Marshal()
		}
		box, err := s.cipher.Seal(plain, env.Header())
		if err != nil {
			s.detach(sub)
			s.drop(sub, "seal failed")
			return
		}
		env.Payload = box
		if err := sub.conn.Send(env); err != nil {
			s.detach(sub)
			s.drop(sub, "send failed")
			return
		}
		mDeltasSent.Inc()
		last = next
	}
}
