package attack

import (
	"errors"
	"fmt"

	"enclaves/internal/crypto"
	"enclaves/internal/group"
	"enclaves/internal/legacy"
	"enclaves/internal/member"
	"enclaves/internal/transport"
	"enclaves/internal/wire"
)

const (
	leaderName = "leader"
	victimName = "alice"
	evilName   = "eve"
)

func userKeys(users ...string) map[string]crypto.Key {
	keys := make(map[string]crypto.Key, len(users))
	for _, u := range users {
		keys[u] = crypto.DeriveKey(u, leaderName, u+"-pw")
	}
	return keys
}

func keyOf(user string) crypto.Key {
	return crypto.DeriveKey(user, leaderName, user+"-pw")
}

// --- legacy test bench ---

type legacyBench struct {
	leader *legacy.Leader
	net    *transport.MemNetwork
	list   transport.Listener
}

func newLegacyBench(users ...string) (*legacyBench, error) {
	g, err := legacy.NewLeader(legacy.LeaderConfig{
		Name:         leaderName,
		Users:        userKeys(users...),
		RekeyOnLeave: true,
	})
	if err != nil {
		return nil, err
	}
	net := transport.NewMemNetwork()
	l, err := net.Listen(leaderName)
	if err != nil {
		return nil, err
	}
	go func() { _ = g.Serve(l) }()
	return &legacyBench{leader: g, net: net, list: l}, nil
}

func (b *legacyBench) close() {
	b.leader.Close()
	b.list.Close()
	b.net.Close()
}

// --- improved test bench ---

type improvedBench struct {
	leader *group.Leader
	net    *transport.MemNetwork
	list   transport.Listener
}

func newImprovedBench(users ...string) (*improvedBench, error) {
	g, err := group.NewLeader(group.Config{
		Name:  leaderName,
		Users: userKeys(users...),
		Rekey: group.RekeyPolicy{OnLeave: true},
	})
	if err != nil {
		return nil, err
	}
	net := transport.NewMemNetwork()
	l, err := net.Listen(leaderName)
	if err != nil {
		return nil, err
	}
	go func() { _ = g.Serve(l) }()
	return &improvedBench{leader: g, net: net, list: l}, nil
}

func (b *improvedBench) close() {
	b.leader.Close()
	b.list.Close()
	b.net.Close()
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// --- A1: forged connection_denied -------------------------------------------

// ForgedDenialLegacy forges the plaintext connection_denied of the legacy
// pre-authentication exchange; the victim gives up although the leader
// would have accepted it (Section 2.3, first attack).
func ForgedDenialLegacy() (Outcome, error) {
	out := Outcome{ID: "A1", Name: "forged connection_denied (DoS)", Protocol: "legacy", Expected: true}
	b, err := newLegacyBench(victimName)
	if err != nil {
		return out, err
	}
	defer b.close()

	conn, link, err := interceptedDial(b.net, leaderName)
	if err != nil {
		return out, err
	}
	// Suppress the genuine ack_open and pre-inject the forged denial.
	link.SetFilter(func(d transport.Direction, e wire.Envelope) bool {
		return !(d == transport.BToA && e.Type == wire.TypeAckOpen)
	})
	denial := wire.Envelope{Type: wire.TypeConnDenied, Sender: leaderName, Receiver: victimName,
		Payload: wire.LegacyOpenPayload{From: leaderName}.Marshal()}
	if err := link.Inject(transport.BToA, denial); err != nil {
		return out, err
	}

	_, joinErr := legacy.Join(conn, victimName, leaderName, keyOf(victimName))
	out.Succeeded = errors.Is(joinErr, legacy.ErrDenied)
	if out.Succeeded {
		out.Detail = "victim believed the forged denial and gave up"
	} else {
		out.Detail = fmt.Sprintf("victim not denied (err=%v)", joinErr)
	}
	return out, nil
}

// ForgedDenialImproved repeats the attack against the improved protocol:
// the pre-authentication exchange no longer exists, so there is nothing
// unauthenticated to forge; injected junk is ignored and the join completes.
func ForgedDenialImproved() (Outcome, error) {
	out := Outcome{ID: "A1", Name: "forged connection_denied (DoS)", Protocol: "improved", Expected: false}
	b, err := newImprovedBench(victimName)
	if err != nil {
		return out, err
	}
	defer b.close()

	conn, link, err := interceptedDial(b.net, leaderName)
	if err != nil {
		return out, err
	}
	// The attacker injects both a legacy-style denial and a garbage
	// AuthKeyDist before the genuine reply can arrive.
	denial := wire.Envelope{Type: wire.TypeConnDenied, Sender: leaderName, Receiver: victimName,
		Payload: wire.LegacyOpenPayload{From: leaderName}.Marshal()}
	garbage := wire.Envelope{Type: wire.TypeAuthKeyDist, Sender: leaderName, Receiver: victimName,
		Payload: []byte("not a ciphertext")}
	if err := link.Inject(transport.BToA, denial); err != nil {
		return out, err
	}
	if err := link.Inject(transport.BToA, garbage); err != nil {
		return out, err
	}

	m, joinErr := member.Join(conn, victimName, leaderName, keyOf(victimName))
	if joinErr != nil {
		out.Succeeded = true
		out.Detail = fmt.Sprintf("join blocked: %v", joinErr)
		return out, nil
	}
	defer m.Leave()
	out.Succeeded = false
	out.Detail = "injected junk ignored; victim joined normally"
	return out, nil
}

// --- A2: insider forges mem_removed ------------------------------------------

// MembershipForgeryLegacy has the insider eve forge mem_removed({eve})
// under the shared group key, convincing the victim that eve has left while
// the leader still counts her as a member (Section 2.3, second attack).
func MembershipForgeryLegacy() (Outcome, error) {
	out := Outcome{ID: "A2", Name: "insider forges mem_removed", Protocol: "legacy", Expected: true}
	b, err := newLegacyBench(victimName, evilName)
	if err != nil {
		return out, err
	}
	defer b.close()

	conn, link, err := interceptedDial(b.net, leaderName)
	if err != nil {
		return out, err
	}
	victim, err := legacy.Join(conn, victimName, leaderName, keyOf(victimName))
	if err != nil {
		return out, err
	}
	evilConn, err := b.net.Dial(leaderName)
	if err != nil {
		return out, err
	}
	evil, err := legacy.Join(evilConn, evilName, leaderName, keyOf(evilName))
	if err != nil {
		return out, err
	}
	if !waitUntil(settle, func() bool { return contains(victim.Members(), evilName) }) {
		return out, errors.New("victim never saw the insider join")
	}

	// Eve seals the forgery with the group key she legitimately holds.
	kg, _ := evil.GroupKey()
	forged := wire.Envelope{Type: wire.TypeMemRemoved, Sender: leaderName, Receiver: victimName}
	p := wire.LegacyMemberPayload{Name: evilName}
	box, err := crypto.Seal(kg, p.Marshal(), forged.Header())
	if err != nil {
		return out, err
	}
	forged.Payload = box
	if err := link.Inject(transport.BToA, forged); err != nil {
		return out, err
	}

	dropped := waitUntil(settle, func() bool { return !contains(victim.Members(), evilName) })
	stillMember := contains(b.leader.Members(), evilName)
	out.Succeeded = dropped && stillMember
	if out.Succeeded {
		out.Detail = "victim's view dropped the insider; leader still lists her"
	} else {
		out.Detail = fmt.Sprintf("dropped=%v leaderStillHasEve=%v", dropped, stillMember)
	}
	return out, nil
}

// MembershipForgeryImproved repeats the forgery against the improved
// protocol: membership changes travel as AdminMsg under the victim's
// per-member session key, which the insider does not hold. Knowing the
// group key no longer helps.
func MembershipForgeryImproved() (Outcome, error) {
	out := Outcome{ID: "A2", Name: "insider forges mem_removed", Protocol: "improved", Expected: false}
	b, err := newImprovedBench(victimName, evilName)
	if err != nil {
		return out, err
	}
	defer b.close()

	conn, link, err := interceptedDial(b.net, leaderName)
	if err != nil {
		return out, err
	}
	victim, err := member.Join(conn, victimName, leaderName, keyOf(victimName))
	if err != nil {
		return out, err
	}
	defer victim.Leave()
	evilConn, err := b.net.Dial(leaderName)
	if err != nil {
		return out, err
	}
	evil, err := member.Join(evilConn, evilName, leaderName, keyOf(evilName))
	if err != nil {
		return out, err
	}
	defer evil.Leave()
	if !waitUntil(settle, func() bool {
		return contains(victim.Members(), evilName) && victim.Epoch() == evil.Epoch() && victim.Epoch() > 0
	}) {
		return out, errors.New("group never converged")
	}

	// Attempt 1: AdminMsg-shaped forgery under the (leaked) group key.
	kg, _ := evil.GroupKey()
	forged := wire.Envelope{Type: wire.TypeAdminMsg, Sender: leaderName, Receiver: victimName}
	p := wire.AdminMsgPayload{Leader: leaderName, User: victimName, Seq: 99, Body: wire.MemberLeft{Name: evilName}}
	box, err := crypto.Seal(kg, p.Marshal(), forged.Header())
	if err != nil {
		return out, err
	}
	forged.Payload = box
	if err := link.Inject(transport.BToA, forged); err != nil {
		return out, err
	}
	// Attempt 2: replay the leader's own earlier AdminMsg frames.
	if _, err := link.ReplayMatching(func(c transport.Captured) bool {
		return c.Dir == transport.BToA && c.Env.Type == wire.TypeAdminMsg
	}); err != nil {
		return out, err
	}

	rejected := waitUntil(settle, func() bool { return victim.Rejected() > 0 })
	dropped := !contains(victim.Members(), evilName)
	out.Succeeded = dropped
	if dropped {
		out.Detail = "victim's view corrupted"
	} else {
		out.Detail = fmt.Sprintf("view intact; %d forgeries rejected (observed=%v)", victim.Rejected(), rejected)
	}
	return out, nil
}

// --- A3: new_key replay / group-key rollback ---------------------------------

// KeyRollbackLegacy replays an old new_key message after the insider was
// expelled, rolling the victim back to a group key the expelled member
// still holds (Section 2.3, third attack).
func KeyRollbackLegacy() (Outcome, error) {
	out := Outcome{ID: "A3", Name: "new_key replay (key rollback)", Protocol: "legacy", Expected: true}
	b, err := newLegacyBench(victimName, evilName)
	if err != nil {
		return out, err
	}
	defer b.close()

	conn, link, err := interceptedDial(b.net, leaderName)
	if err != nil {
		return out, err
	}
	victim, err := legacy.Join(conn, victimName, leaderName, keyOf(victimName))
	if err != nil {
		return out, err
	}
	evilConn, err := b.net.Dial(leaderName)
	if err != nil {
		return out, err
	}
	evil, err := legacy.Join(evilConn, evilName, leaderName, keyOf(evilName))
	if err != nil {
		return out, err
	}
	if !waitUntil(settle, func() bool { return len(b.leader.Members()) == 2 }) {
		return out, errors.New("members never registered")
	}

	// Rekey while eve is a member: she legitimately receives epoch 2.
	if err := b.leader.Rekey(); err != nil {
		return out, err
	}
	if !waitUntil(settle, func() bool { return victim.Epoch() == 2 && evil.Epoch() == 2 }) {
		return out, errors.New("epoch 2 never propagated")
	}
	leakedKey, _ := evil.GroupKey() // eve keeps this key after expulsion

	// Expel eve; the on-leave policy rekeys to epoch 3.
	if err := b.leader.Expel(evilName); err != nil {
		return out, err
	}
	if !waitUntil(settle, func() bool { return victim.Epoch() == 3 }) {
		return out, errors.New("epoch 3 never propagated")
	}

	// Replay the captured epoch-2 new_key (the first NewKey toward alice).
	replayed := false
	for i, c := range link.Captured() {
		if c.Dir == transport.BToA && c.Env.Type == wire.TypeNewKey {
			if err := link.Replay(i); err != nil {
				return out, err
			}
			replayed = true
			break
		}
	}
	if !replayed {
		return out, errors.New("no new_key frame captured")
	}

	rolled := waitUntil(settle, func() bool { return victim.Epoch() == 2 && victim.MaxEpoch() == 3 })
	vk, _ := victim.GroupKey()
	out.Succeeded = rolled && vk.Equal(leakedKey)
	if out.Succeeded {
		out.Detail = "victim rolled back to the expelled member's key"
	} else {
		out.Detail = fmt.Sprintf("rolled=%v keyMatchesLeak=%v (epoch=%d/max=%d)",
			rolled, vk.Equal(leakedKey), victim.Epoch(), victim.MaxEpoch())
	}
	return out, nil
}

// KeyRollbackImproved repeats the replay against the improved protocol: key
// distribution rides the AdminMsg exchange whose freshness is proven by the
// victim's own latest nonce, so every replayed frame is rejected.
func KeyRollbackImproved() (Outcome, error) {
	out := Outcome{ID: "A3", Name: "new_key replay (key rollback)", Protocol: "improved", Expected: false}
	b, err := newImprovedBench(victimName, evilName)
	if err != nil {
		return out, err
	}
	defer b.close()

	conn, link, err := interceptedDial(b.net, leaderName)
	if err != nil {
		return out, err
	}
	victim, err := member.Join(conn, victimName, leaderName, keyOf(victimName))
	if err != nil {
		return out, err
	}
	defer victim.Leave()
	evilConn, err := b.net.Dial(leaderName)
	if err != nil {
		return out, err
	}
	evil, err := member.Join(evilConn, evilName, leaderName, keyOf(evilName))
	if err != nil {
		return out, err
	}
	if !waitUntil(settle, func() bool { return len(b.leader.Members()) == 2 }) {
		return out, errors.New("members never registered")
	}
	if err := b.leader.Rekey(); err != nil {
		return out, err
	}
	epoch2 := b.leader.Epoch()
	if !waitUntil(settle, func() bool { return victim.Epoch() == epoch2 }) {
		return out, errors.New("rekey never propagated")
	}
	_ = evil

	if err := b.leader.Expel(evilName); err != nil {
		return out, err
	}
	epoch3 := b.leader.Epoch()
	if epoch3 <= epoch2 {
		return out, errors.New("no rekey after expel")
	}
	if !waitUntil(settle, func() bool { return victim.Epoch() == epoch3 }) {
		return out, errors.New("post-expel rekey never propagated")
	}

	// Replay every AdminMsg the leader ever sent to the victim — including
	// the epoch-2 key distribution.
	n, err := link.ReplayMatching(func(c transport.Captured) bool {
		return c.Dir == transport.BToA && c.Env.Type == wire.TypeAdminMsg
	})
	if err != nil {
		return out, err
	}
	if n == 0 {
		return out, errors.New("no AdminMsg frames captured")
	}

	waitUntil(settle, func() bool { return victim.Rejected() >= uint64(n) })
	out.Succeeded = victim.Epoch() != epoch3
	if out.Succeeded {
		out.Detail = fmt.Sprintf("victim regressed to epoch %d", victim.Epoch())
	} else {
		out.Detail = fmt.Sprintf("all %d replays rejected; victim stays on epoch %d", n, epoch3)
	}
	return out, nil
}

// --- A4: forged close / forced disconnect ------------------------------------

// ForcedDisconnectLegacy forges the PLAINTEXT req_close of the legacy
// protocol; the leader closes the victim's session although the victim
// never asked to leave.
func ForcedDisconnectLegacy() (Outcome, error) {
	out := Outcome{ID: "A4", Name: "forged close (forced disconnect)", Protocol: "legacy", Expected: true}
	b, err := newLegacyBench(victimName)
	if err != nil {
		return out, err
	}
	defer b.close()

	conn, link, err := interceptedDial(b.net, leaderName)
	if err != nil {
		return out, err
	}
	victim, err := legacy.Join(conn, victimName, leaderName, keyOf(victimName))
	if err != nil {
		return out, err
	}
	if !waitUntil(settle, func() bool { return contains(b.leader.Members(), victimName) }) {
		return out, errors.New("victim never registered")
	}

	forged := wire.Envelope{Type: wire.TypeLegacyReqClose, Sender: victimName, Receiver: leaderName,
		Payload: wire.LegacyOpenPayload{From: victimName}.Marshal()}
	if err := link.Inject(transport.AToB, forged); err != nil {
		return out, err
	}

	out.Succeeded = waitUntil(settle, func() bool { return !contains(b.leader.Members(), victimName) })
	if out.Succeeded {
		out.Detail = "leader closed the session on a forged plaintext req_close"
	} else {
		out.Detail = "leader kept the session"
	}
	_ = victim
	return out, nil
}

// ForcedDisconnectImproved repeats the forgery against the improved
// protocol: ReqClose is {A, L}_Ka, and the attacker does not hold the
// session key, so the leader rejects the forgery and the session survives.
func ForcedDisconnectImproved() (Outcome, error) {
	out := Outcome{ID: "A4", Name: "forged close (forced disconnect)", Protocol: "improved", Expected: false}
	b, err := newImprovedBench(victimName)
	if err != nil {
		return out, err
	}
	defer b.close()

	conn, link, err := interceptedDial(b.net, leaderName)
	if err != nil {
		return out, err
	}
	victim, err := member.Join(conn, victimName, leaderName, keyOf(victimName))
	if err != nil {
		return out, err
	}
	defer victim.Leave()
	if !waitUntil(settle, func() bool { return contains(b.leader.Members(), victimName) && victim.Epoch() > 0 }) {
		return out, errors.New("victim never registered")
	}

	// Forge a ReqClose under a key the attacker invents, plus a replayed
	// legacy-style plaintext close for good measure.
	evilKey, err := crypto.NewKey()
	if err != nil {
		return out, err
	}
	forged := wire.Envelope{Type: wire.TypeReqClose, Sender: victimName, Receiver: leaderName}
	box, err := crypto.Seal(evilKey, wire.ClosePayload{User: victimName, Leader: leaderName}.Marshal(), forged.Header())
	if err != nil {
		return out, err
	}
	forged.Payload = box
	if err := link.Inject(transport.AToB, forged); err != nil {
		return out, err
	}
	plaintext := wire.Envelope{Type: wire.TypeLegacyReqClose, Sender: victimName, Receiver: leaderName,
		Payload: wire.LegacyOpenPayload{From: victimName}.Marshal()}
	if err := link.Inject(transport.AToB, plaintext); err != nil {
		return out, err
	}

	// Prove the session is still alive end to end: a rekey must reach the
	// victim after the forgeries.
	epochBefore := victim.Epoch()
	if err := b.leader.Rekey(); err != nil {
		return out, err
	}
	alive := waitUntil(settle, func() bool { return victim.Epoch() > epochBefore })
	stillMember := contains(b.leader.Members(), victimName)
	out.Succeeded = !(alive && stillMember)
	if out.Succeeded {
		out.Detail = fmt.Sprintf("session damaged (alive=%v member=%v)", alive, stillMember)
	} else {
		out.Detail = "forgeries rejected; session fully live afterwards"
	}
	return out, nil
}
