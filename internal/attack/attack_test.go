package attack

import (
	"strings"
	"testing"
)

func runScenario(t *testing.T, run func() (Outcome, error), wantSuccess bool) Outcome {
	t.Helper()
	o, err := run()
	if err != nil {
		t.Fatalf("scenario error: %v", err)
	}
	if o.Succeeded != wantSuccess {
		t.Fatalf("attack outcome = %v, want %v: %s", o.Succeeded, wantSuccess, o.Detail)
	}
	if !o.AsExpected() {
		t.Fatalf("outcome disagrees with the paper: %s", o)
	}
	return o
}

func TestForgedDenied(t *testing.T) {
	runScenario(t, ForgedDenialLegacy, true)
}

func TestForgedDeniedImprovedResists(t *testing.T) {
	runScenario(t, ForgedDenialImproved, false)
}

func TestForgedMemRemoved(t *testing.T) {
	runScenario(t, MembershipForgeryLegacy, true)
}

func TestForgedMemRemovedImprovedResists(t *testing.T) {
	runScenario(t, MembershipForgeryImproved, false)
}

func TestReplayNewKey(t *testing.T) {
	runScenario(t, KeyRollbackLegacy, true)
}

func TestReplayNewKeyImprovedResists(t *testing.T) {
	runScenario(t, KeyRollbackImproved, false)
}

func TestForcedDisconnect(t *testing.T) {
	runScenario(t, ForcedDisconnectLegacy, true)
}

func TestForcedDisconnectImprovedResists(t *testing.T) {
	runScenario(t, ForcedDisconnectImproved, false)
}

func TestImprovedResistsAll(t *testing.T) {
	for _, s := range All() {
		if s.Protocol != "improved" {
			continue
		}
		s := s
		t.Run(s.ID, func(t *testing.T) {
			o, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if o.Succeeded {
				t.Errorf("improved protocol fell to %s: %s", s.ID, o.Detail)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	outcomes, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 9 {
		t.Fatalf("got %d outcomes, want 9", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.AsExpected() {
			t.Errorf("outcome disagrees with the paper: %s", o)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{ID: "A1", Name: "x", Protocol: "legacy", Succeeded: true, Expected: true, Detail: "d"}
	s := o.String()
	if !strings.Contains(s, "ATTACK SUCCEEDED") || !strings.Contains(s, "as the paper predicts") {
		t.Errorf("String = %q", s)
	}
	o.Expected = false
	if !strings.Contains(o.String(), "DISAGREES") {
		t.Errorf("String = %q", o.String())
	}
}

func TestOldSessionKeyCompromise(t *testing.T) {
	runScenario(t, OldSessionKeyCompromise, false)
}
