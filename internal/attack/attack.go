// Package attack contains executable attack scenarios for the weaknesses
// catalogued in Section 2.3 of the paper, run against BOTH protocol
// implementations:
//
//	A1  forged connection_denied    — denial of service on join
//	A2  forged mem_removed          — membership-view corruption by an insider
//	A3  new_key replay              — group-key rollback by a past member
//	A4  forged close                — forced disconnect of a live member
//	A5  old-session-key compromise  — leaked old keys vs a fresh session
//
// Against the legacy implementation (package legacy) every attack succeeds;
// against the improved implementation (packages core/group/member) every
// attack fails. cmd/attackdemo prints the resulting table, reproducing the
// paper's qualitative claim (experiment ids A1-A4 in DESIGN.md).
//
// Each scenario wires the victim's connection through a transport.Link, the
// Dolev-Yao adversarial hub: the attacker observes all frames and injects or
// replays at will, and — for the insider attacks — participates as a
// legitimately joined member who leaks its keys.
package attack

import (
	"fmt"
	"time"

	"enclaves/internal/transport"
)

// Outcome is the result of one attack scenario against one protocol.
type Outcome struct {
	// ID is the attack identifier (A1..A4).
	ID string
	// Name describes the attack.
	Name string
	// Protocol is "legacy" or "improved".
	Protocol string
	// Succeeded reports whether the ATTACK achieved its goal.
	Succeeded bool
	// Expected is the paper's prediction: true for legacy (vulnerable),
	// false for improved (tolerant).
	Expected bool
	// Detail is a one-line account of what happened.
	Detail string
}

// AsExpected reports whether the outcome matches the paper's claim.
func (o Outcome) AsExpected() bool { return o.Succeeded == o.Expected }

func (o Outcome) String() string {
	verdict := "ATTACK FAILED"
	if o.Succeeded {
		verdict = "ATTACK SUCCEEDED"
	}
	marker := "as the paper predicts"
	if !o.AsExpected() {
		marker = "DISAGREES WITH PAPER"
	}
	return fmt.Sprintf("[%s/%s] %-38s %-16s (%s) — %s",
		o.ID, o.Protocol, o.Name, verdict, marker, o.Detail)
}

// Scenario is a runnable attack.
type Scenario struct {
	ID       string
	Name     string
	Protocol string
	Expected bool
	Run      func() (Outcome, error)
}

// All returns every scenario in report order.
func All() []Scenario {
	return []Scenario{
		{"A1", "forged connection_denied (DoS)", "legacy", true, ForgedDenialLegacy},
		{"A1", "forged connection_denied (DoS)", "improved", false, ForgedDenialImproved},
		{"A2", "insider forges mem_removed", "legacy", true, MembershipForgeryLegacy},
		{"A2", "insider forges mem_removed", "improved", false, MembershipForgeryImproved},
		{"A3", "new_key replay (key rollback)", "legacy", true, KeyRollbackLegacy},
		{"A3", "new_key replay (key rollback)", "improved", false, KeyRollbackImproved},
		{"A4", "forged close (forced disconnect)", "legacy", true, ForcedDisconnectLegacy},
		{"A4", "forged close (forced disconnect)", "improved", false, ForcedDisconnectImproved},
		// A5 has no legacy counterpart: the legacy protocol's old-key
		// weakness is already attack A3 (group-key rollback). A5 checks
		// the paper's explicit Section 3.1 requirement on the improved
		// protocol: old SESSION keys are worthless to the attacker.
		{"A5", "old-session-key compromise", "improved", false, OldSessionKeyCompromise},
	}
}

// RunAll executes every scenario and returns the outcomes.
func RunAll() ([]Outcome, error) {
	var out []Outcome
	for _, s := range All() {
		o, err := s.Run()
		if err != nil {
			return out, fmt.Errorf("attack %s/%s: %w", s.ID, s.Protocol, err)
		}
		out = append(out, o)
	}
	return out, nil
}

// bridge pumps frames between an adversarial link endpoint and a real
// connection in both directions until either side closes.
func bridge(a, b transport.Conn) {
	go pump(a, b)
	go pump(b, a)
}

func pump(src, dst transport.Conn) {
	for {
		env, err := src.Recv()
		if err != nil {
			dst.Close()
			return
		}
		if err := dst.Send(env); err != nil {
			src.Close()
			return
		}
	}
}

// interceptedDial dials addr on net and interposes an adversarial link: the
// returned Conn is what the victim uses; every frame crosses the returned
// Link.
func interceptedDial(net *transport.MemNetwork, addr string) (transport.Conn, *transport.Link, error) {
	upstream, err := net.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	link := transport.NewLink()
	bridge(link.BSide(), upstream)
	return link.ASide(), link, nil
}

// waitUntil polls cond for up to the timeout.
func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

const settle = 5 * time.Second
