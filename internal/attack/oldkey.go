package attack

import (
	"errors"
	"fmt"

	"enclaves/internal/core"
	"enclaves/internal/crypto"
	"enclaves/internal/wire"
)

// OldSessionKeyCompromise is attack A5: the paper requires that "the
// requirements must be satisfied even if old session keys are compromised
// and known to nontrustworthy agents" (Section 3.1). The scenario hands the
// attacker EVERYTHING from the victim's first session — every frame and the
// session key itself — and lets it attack the victim's second session with
// replays and fresh forgeries under the leaked key. The improved protocol
// must reject all of it.
//
// The scenario drives the sans-IO engines directly so the session-1 key can
// be exfiltrated before the engines zeroize it; this mirrors the model's
// Oops event, which publishes every closed session key to the intruder.
func OldSessionKeyCompromise() (Outcome, error) {
	out := Outcome{
		ID:       "A5",
		Name:     "old-session-key compromise",
		Protocol: "improved",
		Expected: false,
	}
	longTerm := crypto.DeriveKey(victimName, leaderName, "pw")

	// --- Session 1: complete join, one admin round, leave. The attacker
	// records every frame and steals the session key.
	m1, err := core.NewMemberSession(victimName, leaderName, longTerm)
	if err != nil {
		return out, err
	}
	l1, err := core.NewLeaderSession(leaderName, victimName, longTerm)
	if err != nil {
		return out, err
	}
	var captured []wire.Envelope
	record := func(env wire.Envelope) wire.Envelope {
		captured = append(captured, env)
		return env
	}

	initReq, err := m1.Start()
	if err != nil {
		return out, err
	}
	lev, err := l1.Handle(record(initReq))
	if err != nil {
		return out, err
	}
	mev, err := m1.Handle(record(*lev.Reply))
	if err != nil {
		return out, err
	}
	if _, err := l1.Handle(record(*mev.Reply)); err != nil {
		return out, err
	}
	adminEnv, err := l1.Send(wire.MemberJoined{Name: evilName})
	if err != nil {
		return out, err
	}
	mev, err = m1.Handle(record(*adminEnv))
	if err != nil {
		return out, err
	}
	if _, err := l1.Handle(record(*mev.Reply)); err != nil {
		return out, err
	}
	leakedKey := m1.SessionKey() // exfiltrated BEFORE leave zeroizes it
	if !leakedKey.Valid() {
		return out, errors.New("no session key to leak")
	}
	closeEnv, err := m1.Leave()
	if err != nil {
		return out, err
	}
	if _, err := l1.Handle(record(closeEnv)); err != nil {
		return out, err
	}

	// --- Session 2: a fresh join by the same user.
	m2, err := core.NewMemberSession(victimName, leaderName, longTerm)
	if err != nil {
		return out, err
	}
	l2, err := core.NewLeaderSession(leaderName, victimName, longTerm)
	if err != nil {
		return out, err
	}
	initReq2, err := m2.Start()
	if err != nil {
		return out, err
	}
	lev2, err := l2.Handle(initReq2)
	if err != nil {
		return out, err
	}
	mev2, err := m2.Handle(*lev2.Reply)
	if err != nil {
		return out, err
	}
	if _, err := l2.Handle(*mev2.Reply); err != nil {
		return out, err
	}

	// --- The attack: replay the entire recorded session 1 into both
	// session-2 engines, then forge fresh frames under the leaked key.
	accepted := 0
	for _, env := range captured {
		if _, err := m2.Handle(env); err == nil {
			accepted++
		}
		if _, err := l2.Handle(env); err == nil {
			accepted++
		}
	}
	forgeries := []wire.Envelope{}
	adminForged := wire.Envelope{Type: wire.TypeAdminMsg, Sender: leaderName, Receiver: victimName}
	p := wire.AdminMsgPayload{Leader: leaderName, User: victimName, Seq: 1, Body: wire.MemberLeft{Name: evilName}}
	if box, err := crypto.Seal(leakedKey, p.Marshal(), adminForged.Header()); err == nil {
		adminForged.Payload = box
		forgeries = append(forgeries, adminForged)
	}
	closeForged := wire.Envelope{Type: wire.TypeReqClose, Sender: victimName, Receiver: leaderName}
	if box, err := crypto.Seal(leakedKey, wire.ClosePayload{User: victimName, Leader: leaderName}.Marshal(), closeForged.Header()); err == nil {
		closeForged.Payload = box
		forgeries = append(forgeries, closeForged)
	}
	for _, env := range forgeries {
		if _, err := m2.Handle(env); err == nil {
			accepted++
		}
		if _, err := l2.Handle(env); err == nil {
			accepted++
		}
	}

	// --- Verdict: nothing accepted AND session 2 still fully functional.
	sessionLive := true
	env, err := l2.Send(wire.MemberJoined{Name: "bob"})
	if err != nil || env == nil {
		sessionLive = false
	} else {
		mev, err := m2.Handle(*env)
		if err != nil || mev.Admin == nil {
			sessionLive = false
		} else if _, err := l2.Handle(*mev.Reply); err != nil {
			sessionLive = false
		}
	}

	out.Succeeded = accepted > 0 || !sessionLive
	if out.Succeeded {
		out.Detail = fmt.Sprintf("%d hostile frames accepted; session live=%v", accepted, sessionLive)
	} else {
		out.Detail = fmt.Sprintf("all %d replays and %d forgeries under the leaked key rejected; session 2 unaffected",
			len(captured)*2, len(forgeries)*2)
	}
	return out, nil
}
