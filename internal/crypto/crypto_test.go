package crypto

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewKeyDistinct(t *testing.T) {
	k1, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1.Equal(k2) {
		t.Error("two fresh keys are equal")
	}
	if !k1.Valid() || !k2.Valid() {
		t.Error("fresh keys must be valid")
	}
}

func TestKeyFromBytes(t *testing.T) {
	raw := bytes.Repeat([]byte{7}, KeySize)
	k, err := KeyFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k.Bytes(), raw) {
		t.Error("Bytes round trip failed")
	}
	if _, err := KeyFromBytes(raw[:KeySize-1]); err == nil {
		t.Error("short key accepted")
	}
	if _, err := KeyFromBytes(append(raw, 0)); err == nil {
		t.Error("long key accepted")
	}
}

func TestKeyBytesIsACopy(t *testing.T) {
	k, _ := NewKey()
	b := k.Bytes()
	b[0] ^= 0xFF
	if bytes.Equal(b, k.Bytes()) {
		t.Error("Bytes exposes internal storage")
	}
}

func TestKeyEqual(t *testing.T) {
	raw := bytes.Repeat([]byte{3}, KeySize)
	k1, _ := KeyFromBytes(raw)
	k2, _ := KeyFromBytes(raw)
	if !k1.Equal(k2) {
		t.Error("equal keys not equal")
	}
	var invalid Key
	if k1.Equal(invalid) {
		t.Error("valid equals invalid")
	}
	var invalid2 Key
	if !invalid.Equal(invalid2) {
		t.Error("two invalid keys should compare equal")
	}
}

func TestKeyZero(t *testing.T) {
	k, _ := NewKey()
	k.Zero()
	if k.Valid() {
		t.Error("zeroed key still valid")
	}
	if !bytes.Equal(k.Bytes(), make([]byte, KeySize)) {
		t.Error("zeroed key retains material")
	}
}

func TestKeyStringHidesMaterial(t *testing.T) {
	raw := bytes.Repeat([]byte{0xAB}, KeySize)
	k, _ := KeyFromBytes(raw)
	if strings.Contains(k.String(), hex.EncodeToString(raw[:8])) {
		t.Error("String leaks key material")
	}
	var invalid Key
	if invalid.String() != "Key(invalid)" {
		t.Errorf("invalid key String = %q", invalid.String())
	}
}

func TestKeyFingerprint(t *testing.T) {
	k1, _ := NewKey()
	k2, _ := NewKey()
	if k1.Fingerprint() == k2.Fingerprint() {
		t.Error("distinct keys share a fingerprint")
	}
	if k1.Fingerprint() != k1.Fingerprint() {
		t.Error("fingerprint not deterministic")
	}
	var invalid Key
	if invalid.Fingerprint() != [8]byte{} {
		t.Error("invalid key fingerprint not zero")
	}
}

func TestNonce(t *testing.T) {
	n1, err := NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	if n1.Equal(n2) {
		t.Error("two fresh nonces are equal")
	}
	if !n1.Equal(n1) {
		t.Error("nonce not equal to itself")
	}
	if n1.IsZero() {
		t.Error("fresh nonce is zero")
	}
	var zero Nonce
	if !zero.IsZero() {
		t.Error("zero nonce not reported zero")
	}
	if len(n1.String()) == 0 {
		t.Error("empty nonce string")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	k, _ := NewKey()
	plaintext := []byte("AuthInitReq, A, L, nonce")
	ad := []byte("header")
	box, err := Seal(k, plaintext, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(k, box, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Errorf("round trip: got %q want %q", got, plaintext)
	}
}

func TestSealRandomized(t *testing.T) {
	k, _ := NewKey()
	b1, _ := Seal(k, []byte("x"), nil)
	b2, _ := Seal(k, []byte("x"), nil)
	if bytes.Equal(b1, b2) {
		t.Error("Seal is deterministic: ciphertexts reveal plaintext equality")
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	k1, _ := NewKey()
	k2, _ := NewKey()
	box, _ := Seal(k1, []byte("secret"), nil)
	if _, err := Open(k2, box, nil); err != ErrDecrypt {
		t.Errorf("Open with wrong key: err = %v, want ErrDecrypt", err)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	k, _ := NewKey()
	box, _ := Seal(k, []byte("secret"), []byte("hdr"))
	for i := 0; i < len(box); i += 7 {
		tampered := append([]byte(nil), box...)
		tampered[i] ^= 0x01
		if _, err := Open(k, tampered, []byte("hdr")); err != ErrDecrypt {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
}

func TestOpenRejectsWrongAD(t *testing.T) {
	k, _ := NewKey()
	box, _ := Seal(k, []byte("secret"), []byte("AdminMsg,L,A"))
	if _, err := Open(k, box, []byte("Ack,L,A")); err != ErrDecrypt {
		t.Error("relabeled header accepted: AD not bound")
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	k, _ := NewKey()
	box, _ := Seal(k, []byte("secret"), nil)
	for _, n := range []int{0, 1, 11, len(box) - 1} {
		if _, err := Open(k, box[:n], nil); err != ErrDecrypt {
			t.Errorf("truncated ciphertext of %d bytes accepted", n)
		}
	}
}

func TestSealInvalidKey(t *testing.T) {
	var k Key
	if _, err := Seal(k, []byte("x"), nil); err == nil {
		t.Error("Seal with invalid key succeeded")
	}
	if _, err := Open(k, []byte("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"), nil); err != ErrDecrypt {
		t.Error("Open with invalid key did not return ErrDecrypt")
	}
}

func TestSealOpenProperty(t *testing.T) {
	k, _ := NewKey()
	f := func(plaintext, ad []byte) bool {
		box, err := Seal(k, plaintext, ad)
		if err != nil {
			return false
		}
		got, err := Open(k, box, ad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, plaintext)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeriveKeyDeterministic(t *testing.T) {
	k1 := DeriveKey("alice", "leader", "hunter2")
	k2 := DeriveKey("alice", "leader", "hunter2")
	if !k1.Equal(k2) {
		t.Error("derivation not deterministic")
	}
}

func TestDeriveKeySeparation(t *testing.T) {
	base := DeriveKey("alice", "leader", "hunter2")
	tests := []struct {
		name string
		k    Key
	}{
		{"different password", DeriveKey("alice", "leader", "hunter3")},
		{"different user", DeriveKey("bob", "leader", "hunter2")},
		{"different leader", DeriveKey("alice", "leader2", "hunter2")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if base.Equal(tt.k) {
				t.Error("derived keys collide")
			}
		})
	}
}

func TestPBKDF2KnownVector(t *testing.T) {
	// RFC 7914 section 11 test vector: PBKDF2-HMAC-SHA-256
	// P="passwd", S="salt", c=1, dkLen=64.
	got := pbkdf2(32, []byte("passwd"), []byte("salt"), 1, 64)
	want, _ := hex.DecodeString(
		"55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc" +
			"49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783")
	if !bytes.Equal(got, want) {
		t.Errorf("pbkdf2 = %x, want %x", got, want)
	}
}

func TestPBKDF2SecondVector(t *testing.T) {
	// RFC 7914: P="Password", S="NaCl", c=80000, dkLen=64.
	if testing.Short() {
		t.Skip("80000 iterations in -short mode")
	}
	got := pbkdf2(32, []byte("Password"), []byte("NaCl"), 80000, 64)
	want, _ := hex.DecodeString(
		"4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56" +
			"a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d")
	if !bytes.Equal(got, want) {
		t.Errorf("pbkdf2 = %x, want %x", got, want)
	}
}
