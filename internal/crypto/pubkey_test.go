package crypto

import (
	"testing"
)

func TestIdentityGeneration(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	if !id.Valid() || !id.Public().Valid() {
		t.Error("fresh identity invalid")
	}
	var zero Identity
	if zero.Valid() || zero.Public().Valid() {
		t.Error("zero identity reported valid")
	}
}

func TestPublicIdentityRoundTrip(t *testing.T) {
	id, _ := NewIdentity()
	pub := id.Public()
	parsed, err := PublicIdentityFromBytes(pub.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if string(parsed.Bytes()) != string(pub.Bytes()) {
		t.Error("public identity round trip failed")
	}
	if _, err := PublicIdentityFromBytes([]byte("short")); err == nil {
		t.Error("malformed public identity accepted")
	}
	if len((PublicIdentity{}).Bytes()) != 0 {
		t.Error("zero public identity has bytes")
	}
}

func TestLongTermFromIdentitiesAgreement(t *testing.T) {
	userID, _ := NewIdentity()
	leaderID, _ := NewIdentity()

	// Both sides must derive the same P_a.
	pa1, err := LongTermFromIdentities(userID, leaderID.Public(), "alice", "leader")
	if err != nil {
		t.Fatal(err)
	}
	pa2, err := LongTermFromIdentities(leaderID, userID.Public(), "alice", "leader")
	if err != nil {
		t.Fatal(err)
	}
	if !pa1.Equal(pa2) {
		t.Fatal("the two sides derived different long-term keys")
	}
	if !pa1.Valid() {
		t.Fatal("derived key invalid")
	}
}

func TestLongTermFromIdentitiesSeparation(t *testing.T) {
	userID, _ := NewIdentity()
	leaderID, _ := NewIdentity()
	otherID, _ := NewIdentity()

	base, _ := LongTermFromIdentities(userID, leaderID.Public(), "alice", "leader")
	tests := []struct {
		name string
		k    func() (Key, error)
	}{
		{"different peer", func() (Key, error) {
			return LongTermFromIdentities(userID, otherID.Public(), "alice", "leader")
		}},
		{"different user name", func() (Key, error) {
			return LongTermFromIdentities(userID, leaderID.Public(), "bob", "leader")
		}},
		{"different leader name", func() (Key, error) {
			return LongTermFromIdentities(userID, leaderID.Public(), "alice", "other")
		}},
		{"swapped names", func() (Key, error) {
			return LongTermFromIdentities(userID, leaderID.Public(), "leader", "alice")
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			k, err := tt.k()
			if err != nil {
				t.Fatal(err)
			}
			if base.Equal(k) {
				t.Error("derived keys collide")
			}
		})
	}
}

func TestLongTermFromIdentitiesValidation(t *testing.T) {
	id, _ := NewIdentity()
	if _, err := LongTermFromIdentities(Identity{}, id.Public(), "a", "l"); err == nil {
		t.Error("invalid own identity accepted")
	}
	if _, err := LongTermFromIdentities(id, PublicIdentity{}, "a", "l"); err == nil {
		t.Error("invalid peer identity accepted")
	}
}
