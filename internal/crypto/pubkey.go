package crypto

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
)

// This file implements the paper's footnote-1 extension: "Authentication
// using public-key cryptography is also possible, but is not currently
// implemented." Instead of deriving the long-term key P_a from a password,
// each user holds an X25519 key pair whose public half is registered with
// the leader (and vice versa); P_a is then derived from the static-static
// Diffie-Hellman shared secret. The protocol engines are unchanged — they
// consume a Key either way — so the verified properties carry over: P_a is
// still a long-term secret known exactly to A and L.

// Identity is a long-term X25519 key pair identifying a user or leader.
type Identity struct {
	priv *ecdh.PrivateKey
}

// PublicIdentity is the shareable half of an Identity.
type PublicIdentity struct {
	pub *ecdh.PublicKey
}

// NewIdentity generates a fresh X25519 identity.
func NewIdentity() (Identity, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return Identity{}, fmt.Errorf("crypto: generate identity: %w", err)
	}
	return Identity{priv: priv}, nil
}

// Public returns the shareable public identity.
func (id Identity) Public() PublicIdentity {
	if id.priv == nil {
		return PublicIdentity{}
	}
	return PublicIdentity{pub: id.priv.PublicKey()}
}

// Valid reports whether the identity holds a key pair.
func (id Identity) Valid() bool { return id.priv != nil }

// Valid reports whether the public identity holds a key.
func (p PublicIdentity) Valid() bool { return p.pub != nil }

// Bytes returns the public key encoding.
func (p PublicIdentity) Bytes() []byte {
	if p.pub == nil {
		return nil
	}
	return p.pub.Bytes()
}

// PublicIdentityFromBytes parses a public identity from its encoding.
func PublicIdentityFromBytes(b []byte) (PublicIdentity, error) {
	pub, err := ecdh.X25519().NewPublicKey(b)
	if err != nil {
		return PublicIdentity{}, fmt.Errorf("crypto: parse public identity: %w", err)
	}
	return PublicIdentity{pub: pub}, nil
}

// LongTermFromIdentities derives the long-term key P_a from the
// static-static X25519 shared secret between a private identity and the
// peer's public identity. Both sides derive the same key:
//
//	LongTermFromIdentities(userPriv, leaderPub, user, leader)
//	  == LongTermFromIdentities(leaderPriv, userPub, user, leader)
//
// The user and leader names are bound into the derivation so the same key
// pair used with different leaders (or user names) yields unrelated keys.
func LongTermFromIdentities(own Identity, peer PublicIdentity, user, leader string) (Key, error) {
	if !own.Valid() || !peer.Valid() {
		return Key{}, fmt.Errorf("crypto: invalid identity")
	}
	secret, err := own.priv.ECDH(peer.pub)
	if err != nil {
		return Key{}, fmt.Errorf("crypto: ecdh: %w", err)
	}
	// HKDF-style extract-and-expand over the shared secret, with the role
	// names as context.
	mac := hmac.New(sha256.New, []byte("enclaves/pk/v1"))
	mac.Write(secret)
	prk := mac.Sum(nil)

	mac = hmac.New(sha256.New, prk)
	mac.Write([]byte(user))
	mac.Write([]byte{0})
	mac.Write([]byte(leader))
	mac.Write([]byte{1})
	okm := mac.Sum(nil)
	return KeyFromBytes(okm[:KeySize])
}
