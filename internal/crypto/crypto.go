// Package crypto provides the symmetric cryptography used by the Enclaves
// runtime: an AEAD cipher (AES-256-GCM) realizing the symbolic {X}_K
// abstraction of the paper, password-based derivation of long-term keys
// P_a (PBKDF2-HMAC-SHA256, implemented on the standard library), and
// generation of random keys and nonces.
//
// The paper assumes an ideal symmetric cipher: ciphertexts reveal nothing
// about the plaintext and cannot be created or modified without the key.
// AEAD gives exactly that — confidentiality plus integrity — so a forged or
// tampered message fails authentication instead of decrypting to garbage.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// KeySize is the size of all symmetric keys in bytes (AES-256).
const KeySize = 32

// NonceSize is the size of protocol nonces in bytes. Protocol nonces are
// the freshness values N1, N2, ... of the paper, not GCM nonces.
const NonceSize = 16

// ErrDecrypt is returned when a ciphertext fails authentication or is
// malformed. Callers must treat it as evidence of forgery or corruption.
var ErrDecrypt = errors.New("crypto: message authentication failed")

// Key is a symmetric key. The zero value is not a valid key; use NewKey,
// DeriveKey, or KeyFromBytes.
type Key struct {
	bytes [KeySize]byte
	valid bool
}

// NewKey generates a fresh random key.
func NewKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k.bytes[:]); err != nil {
		return Key{}, fmt.Errorf("crypto: generate key: %w", err)
	}
	k.valid = true
	return k, nil
}

// KeyFromBytes builds a key from raw bytes, which must be exactly KeySize
// long.
func KeyFromBytes(b []byte) (Key, error) {
	if len(b) != KeySize {
		return Key{}, fmt.Errorf("crypto: key must be %d bytes, got %d", KeySize, len(b))
	}
	var k Key
	copy(k.bytes[:], b)
	k.valid = true
	return k, nil
}

// Bytes returns a copy of the raw key material.
func (k Key) Bytes() []byte {
	out := make([]byte, KeySize)
	copy(out, k.bytes[:])
	return out
}

// Valid reports whether the key holds usable key material.
func (k Key) Valid() bool { return k.valid }

// Equal compares two keys in constant time.
func (k Key) Equal(other Key) bool {
	if !k.valid || !other.valid {
		return k.valid == other.valid
	}
	return subtle.ConstantTimeCompare(k.bytes[:], other.bytes[:]) == 1
}

// Zero overwrites the key material. Discarded session keys are zeroized
// when a session closes (the runtime counterpart of the model's key
// disposal; the Oops event models the pessimistic assumption that the
// adversary got the key anyway).
func (k *Key) Zero() {
	for i := range k.bytes {
		k.bytes[i] = 0
	}
	k.valid = false
}

// String renders a short fingerprint, never the key material.
func (k Key) String() string {
	if !k.valid {
		return "Key(invalid)"
	}
	sum := sha256.Sum256(k.bytes[:])
	return "Key(" + hex.EncodeToString(sum[:4]) + ")"
}

// Fingerprint returns an 8-byte identifier of the key (a truncated hash),
// safe to log and compare.
func (k Key) Fingerprint() [8]byte {
	var fp [8]byte
	if !k.valid {
		return fp
	}
	sum := sha256.Sum256(k.bytes[:])
	copy(fp[:], sum[:8])
	return fp
}

// Nonce is a protocol freshness value (the N_i of the paper).
type Nonce [NonceSize]byte

// NewNonce generates a fresh random nonce.
func NewNonce() (Nonce, error) {
	var n Nonce
	if _, err := rand.Read(n[:]); err != nil {
		return Nonce{}, fmt.Errorf("crypto: generate nonce: %w", err)
	}
	return n, nil
}

// Equal compares two nonces in constant time.
func (n Nonce) Equal(other Nonce) bool {
	return subtle.ConstantTimeCompare(n[:], other[:]) == 1
}

// IsZero reports whether the nonce is all zeros (unset).
func (n Nonce) IsZero() bool {
	var zero Nonce
	return n == zero
}

func (n Nonce) String() string {
	return "N(" + hex.EncodeToString(n[:4]) + ")"
}

// Cipher is a Key bound to its precomputed AEAD instance. Building the AES
// key schedule and the GCM multiplication tables costs more than sealing a
// typical protocol message, so session hot paths construct one Cipher per
// key (NewCipher) and reuse it for every Seal/Open under that key, instead
// of paying the setup on each call as the package-level helpers do.
type Cipher struct {
	key  Key
	aead cipher.AEAD
}

// NewCipher precomputes the AEAD for k. The returned Cipher is safe for
// concurrent use.
func NewCipher(k Key) (*Cipher, error) {
	if !k.valid {
		return nil, errors.New("crypto: cipher from invalid key")
	}
	aead, err := newAEAD(k)
	if err != nil {
		return nil, err
	}
	return &Cipher{key: k, aead: aead}, nil
}

// Key returns the key the cipher is bound to.
func (c *Cipher) Key() Key { return c.key }

// Seal encrypts and authenticates plaintext, binding the additional data ad
// (the unencrypted message header) to the ciphertext. The output carries
// the GCM nonce as a prefix.
func (c *Cipher) Seal(plaintext, ad []byte) ([]byte, error) {
	iv := make([]byte, c.aead.NonceSize(), c.aead.NonceSize()+len(plaintext)+c.aead.Overhead())
	if _, err := rand.Read(iv); err != nil {
		return nil, fmt.Errorf("crypto: generate iv: %w", err)
	}
	return c.aead.Seal(iv, iv, plaintext, ad), nil
}

// Open authenticates and decrypts a ciphertext produced by Seal under the
// same key and additional data. It returns ErrDecrypt on any failure, so
// callers cannot distinguish tampering modes (no decryption oracle).
func (c *Cipher) Open(ciphertext, ad []byte) ([]byte, error) {
	if len(ciphertext) < c.aead.NonceSize()+c.aead.Overhead() {
		return nil, ErrDecrypt
	}
	iv, box := ciphertext[:c.aead.NonceSize()], ciphertext[c.aead.NonceSize():]
	plain, err := c.aead.Open(nil, iv, box, ad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return plain, nil
}

// Seal encrypts and authenticates plaintext under k, rebuilding the AEAD on
// every call. One-shot paths (long-term-key handshake messages, the legacy
// protocol) use it; anything per-message holds a Cipher instead.
func Seal(k Key, plaintext, ad []byte) ([]byte, error) {
	c, err := NewCipher(k)
	if err != nil {
		return nil, err
	}
	return c.Seal(plaintext, ad)
}

// Open authenticates and decrypts a ciphertext produced by Seal under the
// same key and additional data, rebuilding the AEAD on every call; see
// Cipher.Open for the cached variant.
func Open(k Key, ciphertext, ad []byte) ([]byte, error) {
	if !k.valid {
		return nil, ErrDecrypt
	}
	c, err := NewCipher(k)
	if err != nil {
		return nil, ErrDecrypt
	}
	return c.Open(ciphertext, ad)
}

func newAEAD(k Key) (cipher.AEAD, error) {
	block, err := aes.NewCipher(k.bytes[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: aes: %w", err)
	}
	return cipher.NewGCM(block)
}

// DeriveKeyIterations is the PBKDF2 iteration count used for password
// derivation of long-term keys.
const DeriveKeyIterations = 4096

// DeriveKey derives the long-term key P_user from the user's password, as
// in Section 2.2 ("a key P_a derived from A's password, so P_a is known by
// both A and L"). The user and leader names salt the derivation so equal
// passwords at different leaders produce unrelated keys.
func DeriveKey(user, leader, password string) Key {
	salt := []byte("enclaves/v1|" + leader + "|" + user)
	raw := pbkdf2(sha256.New().Size(), []byte(password), salt, DeriveKeyIterations, KeySize)
	k, _ := KeyFromBytes(raw) // length is KeySize by construction
	return k
}

// pbkdf2 implements PBKDF2-HMAC-SHA256 (RFC 2898) on the standard library.
func pbkdf2(hashLen int, password, salt []byte, iter, keyLen int) []byte {
	numBlocks := (keyLen + hashLen - 1) / hashLen
	out := make([]byte, 0, numBlocks*hashLen)
	block := make([]byte, 4)
	for i := 1; i <= numBlocks; i++ {
		binary.BigEndian.PutUint32(block, uint32(i))
		mac := hmac.New(sha256.New, password)
		mac.Write(salt)
		mac.Write(block)
		u := mac.Sum(nil)
		t := make([]byte, len(u))
		copy(t, u)
		for j := 1; j < iter; j++ {
			mac = hmac.New(sha256.New, password)
			mac.Write(u)
			u = mac.Sum(nil)
			for x := range t {
				t[x] ^= u[x]
			}
		}
		out = append(out, t...)
	}
	return out[:keyLen]
}
