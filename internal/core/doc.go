// Package core implements the paper's primary contribution: the improved
// intrusion-tolerant Enclaves protocol of Section 3.2, as a pair of
// transport-independent ("sans-IO") session engines.
//
//   - MemberSession is the user side of Figure 2: it performs the
//     three-message authentication (AuthInitReq / AuthKeyDist / AuthAckKey),
//     accepts group-management messages whose freshness is proven by the
//     member's own most recent nonce, acknowledges each with a fresh nonce,
//     and leaves with a single unreplayable ReqClose.
//
//   - LeaderSession is the leader's per-member system of Figure 3: it
//     authenticates a joining user against the shared long-term key P_a,
//     generates the session key K_a, and runs the ack-gated
//     group-management pipeline — at most one outstanding AdminMsg, each
//     carrying the member's latest nonce N_{2i+1} (freshness to the member)
//     and a fresh leader nonce N_{2i+2} (freshness of the acknowledgment).
//
// The engines consume and produce wire.Envelope values and never touch a
// socket, so the same code is driven by the in-memory network, the
// adversarial hub of package transport, TCP, and the test suites. Rejected
// messages (replays, forgeries, wrong-state deliveries) leave the engine
// state unchanged and return a typed error; the caller decides whether to
// log or drop.
//
// The correspondence with the verified model (package model, checked by
// package checker) is one-to-one: every guard in these engines implements a
// transition guard of the model, with symbolic encryption replaced by
// AES-256-GCM and symbolic nonces by 128-bit random values.
package core
