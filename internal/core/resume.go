package core

import (
	"fmt"

	"enclaves/internal/crypto"
	"enclaves/internal/wire"
)

// This file implements the session-resumption sub-protocol engines for hot
// failover. A member whose leader went silent re-attaches to the promoted
// standby under its EXISTING session key and chained nonce — no password
// re-handshake:
//
//	Resume     {A, L, N_last, N_f}_Ka   (member -> standby, TypeResume)
//	ResumeAck  {L, A, N_f, N_l, X}_Ka   (standby -> member, TypeResumeAck)
//	Ack        {A, L, N_l, N'}_Ka       (member -> standby, standard Ack)
//
// N_last is the member's most recent chained nonce; the standby matches it
// against the session state replicated from the primary, so a replayed
// Resume carries a stale nonce and is rejected. The ResumeAck reuses the
// verified AdminMsg shape, carrying the post-promotion NewGroupKey as its
// body; from the member's ack on, the ordinary ack-gated pipeline continues
// with the chain unbroken.

// SessionState is the replicable snapshot of one established session: the
// minimum a standby needs to resume it. Both engines export it.
type SessionState struct {
	User       string
	Leader     string
	SessionKey crypto.Key
	// Nonce is the member's latest chained nonce (the same value on both
	// sides when the pipeline is quiescent).
	Nonce crypto.Nonce
	// Seq is the AdminMsg pipeline sequence (leader side; zero for members).
	Seq uint64
}

// ExportState snapshots the leader engine's resumable session state. It
// reports false while no session is established (the member's latest nonce
// only exists from acceptance on).
func (l *LeaderSession) ExportState() (SessionState, bool) {
	if l.phase != LeaderConnected && l.phase != LeaderWaitingForAck {
		return SessionState{}, false
	}
	return SessionState{
		User:       l.user,
		Leader:     l.leader,
		SessionKey: l.sessionKey,
		Nonce:      l.memberNonce,
		Seq:        l.seq,
	}, true
}

// ResumeLeaderSession rebuilds a leader-side engine from replicated session
// state, Connected and ready to verify the member's Resume. The promoted
// standby constructs one per replicated member.
func ResumeLeaderSession(leader, user string, longTerm crypto.Key, st SessionState) (*LeaderSession, error) {
	l, err := NewLeaderSession(leader, user, longTerm)
	if err != nil {
		return nil, err
	}
	if !st.SessionKey.Valid() {
		return nil, fmt.Errorf("core: resume with invalid session key")
	}
	session, err := crypto.NewCipher(st.SessionKey)
	if err != nil {
		return nil, err
	}
	l.sessionKey = st.SessionKey
	l.session = session
	l.memberNonce = st.Nonce
	l.seq = st.Seq
	l.phase = LeaderConnected
	return l, nil
}

// HandleResume verifies a member's Resume against the replicated session
// state: the payload must authenticate under K_a and echo the member's
// latest replicated nonce. On success the chain advances to the member's
// fresh nonce; the caller then emits the ResumeAck via EmitResumeAck.
func (l *LeaderSession) HandleResume(env wire.Envelope) (LeaderEvent, error) {
	if env.Type != wire.TypeResume {
		return LeaderEvent{}, fmt.Errorf("%w: HandleResume got %s", ErrState, env.Type)
	}
	if l.phase != LeaderConnected {
		return LeaderEvent{}, fmt.Errorf("%w: Resume in phase %s", ErrState, l.phase)
	}
	p, err := l.openAck(env)
	if err != nil {
		return LeaderEvent{}, err
	}
	// A captured Resume replayed later carries a nonce the chain has moved
	// past (the successful resume advanced it), so it is rejected here.
	if !p.NPrev.Equal(l.memberNonce) {
		return LeaderEvent{}, fmt.Errorf("%w: resume does not echo the replicated nonce", ErrFreshness)
	}
	l.memberNonce = p.NNext
	return LeaderEvent{Accepted: true}, nil
}

// EmitResumeAck builds the ResumeAck {L, A, N_f, N_l, X}_Ka completing the
// resumption, with body X (the post-promotion NewGroupKey). It is the
// AdminMsg emission under a distinct envelope type: the engine moves to
// WaitingForAck and the member's standard Ack resumes the pipeline.
func (l *LeaderSession) EmitResumeAck(body wire.AdminBody) (*wire.Envelope, error) {
	if l.phase != LeaderConnected {
		return nil, fmt.Errorf("%w: EmitResumeAck in phase %s", ErrState, l.phase)
	}
	return l.emitAdminAs(wire.TypeResumeAck, body)
}

// --- member side ---

// ExportState snapshots the member engine's resumable session state; false
// while not Connected.
func (m *MemberSession) ExportState() (SessionState, bool) {
	if m.phase != MemberConnected {
		return SessionState{}, false
	}
	return SessionState{
		User:       m.user,
		Leader:     m.leader,
		SessionKey: m.sessionKey,
		Nonce:      m.myNonce,
	}, true
}

// ResumeMemberSession rebuilds a member engine from the session state of a
// previous connection, ready to StartResume against a promoted standby.
func ResumeMemberSession(user, leader string, longTerm crypto.Key, st SessionState) (*MemberSession, error) {
	m, err := NewMemberSession(user, leader, longTerm)
	if err != nil {
		return nil, err
	}
	if !st.SessionKey.Valid() {
		return nil, fmt.Errorf("core: resume with invalid session key")
	}
	session, err := crypto.NewCipher(st.SessionKey)
	if err != nil {
		return nil, err
	}
	m.sessionKey = st.SessionKey
	m.session = session
	m.myNonce = st.Nonce
	return m, nil
}

// StartResume begins resumption: it returns the Resume envelope
// {A, L, N_last, N_f}_Ka and moves to Resuming. The fresh N_f becomes the
// member's latest nonce, so the ResumeAck must echo it.
func (m *MemberSession) StartResume() (wire.Envelope, error) {
	if m.phase != MemberNotConnected || m.session == nil {
		return wire.Envelope{}, fmt.Errorf("%w: StartResume in phase %s", ErrState, m.phase)
	}
	nf, err := crypto.NewNonce()
	if err != nil {
		return wire.Envelope{}, err
	}
	env := wire.Envelope{Type: wire.TypeResume, Sender: m.user, Receiver: m.leader}
	p := wire.AckPayload{User: m.user, Leader: m.leader, NPrev: m.myNonce, NNext: nf}
	box, err := m.session.Seal(p.Marshal(), env.Header())
	if err != nil {
		return wire.Envelope{}, err
	}
	env.Payload = box
	m.myNonce = nf
	m.phase = MemberResuming
	return env, nil
}

// handleResumeAck processes the standby's ResumeAck exactly like an
// AdminMsg — same shape, same freshness guard against the fresh resume
// nonce — and completes the resumption: the engine is Connected again and
// the returned Ack restarts the ordinary pipeline.
func (m *MemberSession) handleResumeAck(env wire.Envelope) (MemberEvent, error) {
	if m.phase != MemberResuming {
		return MemberEvent{}, fmt.Errorf("%w: ResumeAck in phase %s", ErrState, m.phase)
	}
	plain, err := m.session.Open(env.Payload, env.Header())
	if err != nil {
		return MemberEvent{}, fmt.Errorf("%w: resume ack: %v", ErrAuth, err)
	}
	p, err := wire.UnmarshalAdminMsg(plain)
	if err != nil {
		return MemberEvent{}, fmt.Errorf("%w: resume ack: %v", ErrAuth, err)
	}
	if p.Leader != m.leader || p.User != m.user {
		return MemberEvent{}, fmt.Errorf("%w: resume ack names %q/%q", ErrIdentity, p.Leader, p.User)
	}
	if !p.NPrev.Equal(m.myNonce) {
		return MemberEvent{}, fmt.Errorf("%w: resume ack carries stale nonce", ErrFreshness)
	}

	next, err := crypto.NewNonce()
	if err != nil {
		return MemberEvent{}, err
	}
	reply := wire.Envelope{Type: wire.TypeAck, Sender: m.user, Receiver: m.leader}
	ack := wire.AckPayload{User: m.user, Leader: m.leader, NPrev: p.NNext, NNext: next}
	box, err := m.session.Seal(ack.Marshal(), reply.Header())
	if err != nil {
		return MemberEvent{}, err
	}
	reply.Payload = box

	m.myNonce = next
	m.phase = MemberConnected
	m.accepted++
	return MemberEvent{Reply: &reply, Connected: true, Admin: p.Body, Seq: p.Seq}, nil
}
