package core

import (
	"errors"
	"testing"

	"enclaves/internal/crypto"
	"enclaves/internal/wire"
)

// resumedPair drives a join to completion, exports both sides' state, and
// rebuilds fresh engines from it — the failover scenario with the promoted
// leader holding the replicated state. It returns the rebuilt engines and
// the Resume envelope already accepted by the leader.
func resumedPair(t *testing.T) (*MemberSession, *LeaderSession, wire.Envelope) {
	t.Helper()
	longTerm := crypto.DeriveKey(testUser, testLeader, "correct horse battery")
	m0, l0 := newPair(t)
	handshake(t, m0, l0)
	adminRound(t, m0, l0, wire.Heartbeat{})

	ms, ok := m0.ExportState()
	if !ok {
		t.Fatal("member export failed while connected")
	}
	ls, ok := l0.ExportState()
	if !ok {
		t.Fatal("leader export failed while connected")
	}
	if !ms.Nonce.Equal(ls.Nonce) {
		t.Fatal("quiescent session: member and leader nonces must agree")
	}

	m, err := ResumeMemberSession(testUser, testLeader, longTerm, ms)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ResumeLeaderSession(testLeader, testUser, longTerm, ls)
	if err != nil {
		t.Fatal(err)
	}
	resume, err := m.StartResume()
	if err != nil {
		t.Fatal(err)
	}
	if resume.Type != wire.TypeResume {
		t.Fatalf("resume envelope type = %v", resume.Type)
	}
	lev, err := l.HandleResume(resume)
	if err != nil {
		t.Fatal(err)
	}
	if !lev.Accepted {
		t.Fatal("leader did not accept the resume")
	}
	return m, l, resume
}

// TestResumeRoundTrip: the full resumption sub-protocol — Resume, ResumeAck
// carrying the post-promotion key, member ack — after which the ordinary
// ack-gated pipeline continues with the chain unbroken.
func TestResumeRoundTrip(t *testing.T) {
	m, l, _ := resumedPair(t)

	key, err := crypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	ackEnv, err := l.EmitResumeAck(wire.NewGroupKey{Epoch: 7, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if ackEnv.Type != wire.TypeResumeAck {
		t.Fatalf("resume ack type = %v", ackEnv.Type)
	}
	mev, err := m.Handle(*ackEnv)
	if err != nil {
		t.Fatal(err)
	}
	if !mev.Connected || mev.Reply == nil {
		t.Fatalf("member event = %+v", mev)
	}
	gk, ok := mev.Admin.(wire.NewGroupKey)
	if !ok || gk.Epoch != 7 || !gk.Key.Equal(key) {
		t.Fatalf("resume ack body = %+v", mev.Admin)
	}
	lev, err := l.Handle(*mev.Reply)
	if err != nil {
		t.Fatal(err)
	}
	if !lev.Acked {
		t.Fatal("leader did not register the completing ack")
	}

	// The pipeline continues as if the failover never happened.
	adminRound(t, m, l, wire.MemberJoined{Name: "bob"})
}

// TestResumeReplayRejected: a captured Resume replayed after the genuine one
// carries a nonce the chain has moved past — freshness failure, no state
// change.
func TestResumeReplayRejected(t *testing.T) {
	_, l, resume := resumedPair(t)
	if _, err := l.HandleResume(resume); !errors.Is(err, ErrFreshness) {
		t.Fatalf("replayed Resume: err = %v, want ErrFreshness", err)
	}
}

// TestResumeStaleStateRejected: a Resume built from state older than the
// replicated nonce (the member lost an ack-advance the standby saw) is
// rejected — this member must fall back to the full handshake.
func TestResumeStaleStateRejected(t *testing.T) {
	longTerm := crypto.DeriveKey(testUser, testLeader, "correct horse battery")
	m0, l0 := newPair(t)
	handshake(t, m0, l0)
	stale, _ := m0.ExportState()
	// The pipeline advances past the exported snapshot.
	adminRound(t, m0, l0, wire.Heartbeat{})
	current, _ := l0.ExportState()

	m, err := ResumeMemberSession(testUser, testLeader, longTerm, stale)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ResumeLeaderSession(testLeader, testUser, longTerm, current)
	if err != nil {
		t.Fatal(err)
	}
	resume, err := m.StartResume()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.HandleResume(resume); !errors.Is(err, ErrFreshness) {
		t.Fatalf("stale Resume: err = %v, want ErrFreshness", err)
	}
}

// TestResumeWrongKeyRejected: a Resume sealed under a different session key
// fails authentication outright.
func TestResumeWrongKeyRejected(t *testing.T) {
	longTerm := crypto.DeriveKey(testUser, testLeader, "correct horse battery")
	m0, l0 := newPair(t)
	handshake(t, m0, l0)
	ls, _ := l0.ExportState()
	l, err := ResumeLeaderSession(testLeader, testUser, longTerm, ls)
	if err != nil {
		t.Fatal(err)
	}

	forged := ls
	k, err := crypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	forged.SessionKey = k
	m, err := ResumeMemberSession(testUser, testLeader, longTerm, forged)
	if err != nil {
		t.Fatal(err)
	}
	resume, err := m.StartResume()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.HandleResume(resume); !errors.Is(err, ErrAuth) {
		t.Fatalf("forged Resume: err = %v, want ErrAuth", err)
	}
}

// TestResumeAckReplayRejected: replaying the ResumeAck after the member has
// completed resumption is rejected (the member is no longer Resuming), and
// an old AdminMsg from before the failover cannot be injected either — its
// nonce predates the resume exchange.
func TestResumeAckReplayRejected(t *testing.T) {
	m, l, _ := resumedPair(t)
	key, err := crypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	ackEnv, err := l.EmitResumeAck(wire.NewGroupKey{Epoch: 7, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Handle(*ackEnv); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Handle(*ackEnv); !errors.Is(err, ErrState) {
		t.Fatalf("replayed ResumeAck: err = %v, want ErrState", err)
	}
}

// TestExportStateGates: state export is only offered for established
// sessions — nothing resumable exists mid-handshake.
func TestExportStateGates(t *testing.T) {
	m, l := newPair(t)
	if _, ok := m.ExportState(); ok {
		t.Error("member exported state before connecting")
	}
	if _, ok := l.ExportState(); ok {
		t.Error("leader exported state before accepting")
	}
	initReq, err := m.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.ExportState(); ok {
		t.Error("member exported state mid-handshake")
	}
	if _, err := l.Handle(initReq); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.ExportState(); ok {
		t.Error("leader exported state mid-handshake")
	}
}

// TestResumeRequiresState: StartResume without imported session state (a
// fresh engine) must refuse — there is nothing to resume.
func TestResumeRequiresState(t *testing.T) {
	m, _ := newPair(t)
	if _, err := m.StartResume(); !errors.Is(err, ErrState) {
		t.Fatalf("StartResume on fresh engine: err = %v, want ErrState", err)
	}
}
