package core

import (
	"math/rand"
	"testing"

	"enclaves/internal/crypto"
	"enclaves/internal/wire"
)

// These tests attack the engines with randomized mutations of genuine
// protocol traffic: bit flips, truncations, label rewrites and endpoint
// rewrites. The intrusion-tolerance contract is that NO mutated frame is
// ever accepted and NO frame — however malformed — changes engine state or
// causes a panic.

// mutate returns a corrupted copy of the envelope.
func mutate(r *rand.Rand, env wire.Envelope) wire.Envelope {
	out := env
	out.Payload = append([]byte(nil), env.Payload...)
	switch r.Intn(5) {
	case 0: // bit flip
		if len(out.Payload) > 0 {
			out.Payload[r.Intn(len(out.Payload))] ^= 1 << r.Intn(8)
		}
	case 1: // truncation
		if len(out.Payload) > 1 {
			out.Payload = out.Payload[:r.Intn(len(out.Payload))]
		}
	case 2: // extension
		out.Payload = append(out.Payload, byte(r.Intn(256)))
	case 3: // label rewrite
		labels := []wire.Type{
			wire.TypeAuthInitReq, wire.TypeAuthKeyDist, wire.TypeAuthAckKey,
			wire.TypeAdminMsg, wire.TypeAck, wire.TypeReqClose, wire.TypeAppData,
		}
		out.Type = labels[r.Intn(len(labels))]
	case 4: // endpoint rewrite
		out.Sender = "mallory"
	}
	return out
}

// sameMember captures the observable state of a member engine.
func memberSnapshot(m *MemberSession) [3]any {
	return [3]any{m.Phase(), m.Accepted(), m.SessionKey()}
}

func leaderSnapshot(l *LeaderSession) [3]any {
	return [3]any{l.Phase(), l.PendingAdmin(), l.SessionKey()}
}

// TestMutatedHandshakeFramesRejected replays mutated handshake traffic into
// both engines at every stage.
func TestMutatedHandshakeFramesRejected(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		m, l := newPair(t)
		initReq, err := m.Start()
		if err != nil {
			t.Fatal(err)
		}

		// Stage 1: mutated AuthInitReq at the leader.
		for i := 0; i < 20; i++ {
			bad := mutate(r, initReq)
			if bad.Type == initReq.Type && string(bad.Payload) == string(initReq.Payload) && bad.Sender == initReq.Sender {
				continue // mutation was a no-op
			}
			before := leaderSnapshot(l)
			if _, err := l.Handle(bad); err == nil {
				t.Fatalf("leader accepted mutated AuthInitReq (trial %d)", trial)
			}
			if leaderSnapshot(l) != before {
				t.Fatal("rejected frame changed leader state")
			}
		}
		lev, err := l.Handle(initReq)
		if err != nil {
			t.Fatal(err)
		}

		// Stage 2: mutated AuthKeyDist at the member.
		keyDist := *lev.Reply
		for i := 0; i < 20; i++ {
			bad := mutate(r, keyDist)
			if bad.Type == keyDist.Type && string(bad.Payload) == string(keyDist.Payload) && bad.Sender == keyDist.Sender {
				continue
			}
			before := memberSnapshot(m)
			if _, err := m.Handle(bad); err == nil {
				t.Fatalf("member accepted mutated AuthKeyDist (trial %d)", trial)
			}
			if memberSnapshot(m) != before {
				t.Fatal("rejected frame changed member state")
			}
		}
		mev, err := m.Handle(keyDist)
		if err != nil {
			t.Fatal(err)
		}

		// Stage 3: mutated AuthAckKey at the leader.
		keyAck := *mev.Reply
		for i := 0; i < 20; i++ {
			bad := mutate(r, keyAck)
			if bad.Type == keyAck.Type && string(bad.Payload) == string(keyAck.Payload) && bad.Sender == keyAck.Sender {
				continue
			}
			if _, err := l.Handle(bad); err == nil {
				t.Fatalf("leader accepted mutated AuthAckKey (trial %d)", trial)
			}
		}
		if _, err := l.Handle(keyAck); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMutatedAdminFramesRejected fuzzes the connected phase.
func TestMutatedAdminFramesRejected(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	m, l := newPair(t)
	handshake(t, m, l)

	for round := 0; round < 30; round++ {
		envp, err := l.Send(wire.MemberJoined{Name: "x"})
		if err != nil {
			t.Fatal(err)
		}
		// Mutations of the genuine AdminMsg must all be rejected.
		for i := 0; i < 20; i++ {
			bad := mutate(r, *envp)
			if bad.Type == envp.Type && string(bad.Payload) == string(envp.Payload) && bad.Sender == envp.Sender {
				continue
			}
			before := memberSnapshot(m)
			if _, err := m.Handle(bad); err == nil {
				t.Fatalf("member accepted mutated AdminMsg (round %d)", round)
			}
			if memberSnapshot(m) != before {
				t.Fatal("rejected frame changed member state")
			}
		}
		// The genuine one still works afterwards.
		mev, err := m.Handle(*envp)
		if err != nil {
			t.Fatalf("genuine AdminMsg rejected after fuzzing: %v", err)
		}
		// Mutations of the genuine Ack must all be rejected.
		for i := 0; i < 20; i++ {
			bad := mutate(r, *mev.Reply)
			if bad.Type == mev.Reply.Type && string(bad.Payload) == string(mev.Reply.Payload) && bad.Sender == mev.Reply.Sender {
				continue
			}
			if _, err := l.Handle(bad); err == nil {
				t.Fatalf("leader accepted mutated Ack (round %d)", round)
			}
		}
		if _, err := l.Handle(*mev.Reply); err != nil {
			t.Fatalf("genuine Ack rejected after fuzzing: %v", err)
		}
	}
	if m.Accepted() != 30 {
		t.Errorf("accepted = %d, want 30", m.Accepted())
	}
}

// TestRandomGarbageNeverPanics drives both engines with completely random
// frames through a full session's phases.
func TestRandomGarbageNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	m, l := newPair(t)
	garbage := func() wire.Envelope {
		payload := make([]byte, r.Intn(200))
		r.Read(payload)
		return wire.Envelope{
			Type:     wire.Type(r.Intn(30)),
			Sender:   "x",
			Receiver: "y",
			Payload:  payload,
		}
	}
	spray := func() {
		for i := 0; i < 100; i++ {
			_, _ = m.Handle(garbage())
			_, _ = l.Handle(garbage())
		}
	}
	spray()
	initReq, _ := m.Start()
	spray()
	lev, err := l.Handle(initReq)
	if err != nil {
		t.Fatal(err)
	}
	spray()
	mev, err := m.Handle(*lev.Reply)
	if err != nil {
		t.Fatal(err)
	}
	spray()
	if _, err := l.Handle(*mev.Reply); err != nil {
		t.Fatal(err)
	}
	spray()
	if m.Phase() != MemberConnected || l.Phase() != LeaderConnected {
		t.Error("garbage disturbed the session")
	}
}

// TestForgeryUnderDerivedKeysRejected tries systematic forgeries under keys
// related to (but distinct from) the session's.
func TestForgeryUnderDerivedKeysRejected(t *testing.T) {
	m, l := newPair(t)
	handshake(t, m, l)

	otherLongTerm := crypto.DeriveKey(testUser, testLeader, "other password")
	randomKey, _ := crypto.NewKey()
	for _, k := range []crypto.Key{otherLongTerm, randomKey} {
		env := wire.Envelope{Type: wire.TypeAdminMsg, Sender: testLeader, Receiver: testUser}
		p := wire.AdminMsgPayload{Leader: testLeader, User: testUser, Seq: 1, Body: wire.MemberLeft{Name: "bob"}}
		box, err := crypto.Seal(k, p.Marshal(), env.Header())
		if err != nil {
			t.Fatal(err)
		}
		env.Payload = box
		if _, err := m.Handle(env); err == nil {
			t.Error("member accepted forgery under unrelated key")
		}
		closeEnv := wire.Envelope{Type: wire.TypeReqClose, Sender: testUser, Receiver: testLeader}
		box, err = crypto.Seal(k, wire.ClosePayload{User: testUser, Leader: testLeader}.Marshal(), closeEnv.Header())
		if err != nil {
			t.Fatal(err)
		}
		closeEnv.Payload = box
		if _, err := l.Handle(closeEnv); err == nil {
			t.Error("leader accepted close under unrelated key")
		}
	}
	if l.Phase() != LeaderConnected || m.Phase() != MemberConnected {
		t.Error("forgeries disturbed the session")
	}
}
