package core_test

import (
	"fmt"

	"enclaves/internal/core"
	"enclaves/internal/crypto"
	"enclaves/internal/wire"
)

// Example drives the complete improved protocol at the engine level: the
// three-message join, one group-management exchange, and the close — with
// no network at all (the engines are sans-IO).
func Example() {
	longTerm := crypto.DeriveKey("alice", "leader", "alice's password")
	m, err := core.NewMemberSession("alice", "leader", longTerm)
	if err != nil {
		panic(err)
	}
	l, err := core.NewLeaderSession("leader", "alice", longTerm)
	if err != nil {
		panic(err)
	}

	// Join: AuthInitReq -> AuthKeyDist -> AuthAckKey.
	initReq, _ := m.Start()
	lev, _ := l.Handle(initReq)
	mev, _ := m.Handle(*lev.Reply)
	lev, _ = l.Handle(*mev.Reply)
	fmt.Println("member accepted:", lev.Accepted)

	// One group-management round: AdminMsg -> Ack.
	adminEnv, _ := l.Send(wire.MemberJoined{Name: "bob"})
	mev, _ = m.Handle(*adminEnv)
	fmt.Println("admin delivered:", mev.Admin)
	lev, _ = l.Handle(*mev.Reply)
	fmt.Println("admin acknowledged:", lev.Acked)

	// A replay of the same AdminMsg is rejected by the nonce chain.
	if _, err := m.Handle(*adminEnv); err != nil {
		fmt.Println("replay rejected")
	}

	// Leave: ReqClose.
	closeEnv, _ := m.Leave()
	lev, _ = l.Handle(closeEnv)
	fmt.Println("session closed:", lev.Closed)

	// Output:
	// member accepted: true
	// admin delivered: MemberJoined(bob)
	// admin acknowledged: true
	// replay rejected
	// session closed: true
}
