package core

import (
	"fmt"

	"enclaves/internal/crypto"
	"enclaves/internal/wire"
)

// LeaderPhase enumerates the per-member leader engine's states (Figure 3).
type LeaderPhase uint8

// Leader phases.
const (
	LeaderIdle LeaderPhase = iota + 1
	LeaderWaitingForKeyAck
	LeaderConnected
	LeaderWaitingForAck
	LeaderClosed
)

func (p LeaderPhase) String() string {
	switch p {
	case LeaderIdle:
		return "Idle"
	case LeaderWaitingForKeyAck:
		return "WaitingForKeyAck"
	case LeaderConnected:
		return "Connected"
	case LeaderWaitingForAck:
		return "WaitingForAck"
	case LeaderClosed:
		return "Closed"
	default:
		return "invalid"
	}
}

// LeaderEvent is the outcome of feeding one envelope to a LeaderSession.
type LeaderEvent struct {
	// Reply, if non-nil, must be transmitted to the member (AuthKeyDist, or
	// the next AdminMsg drained from the queue after an acknowledgment).
	Reply *wire.Envelope
	// Accepted is true when this step accepted the member into the group
	// (the AuthAckKey acceptance event of the authentication property).
	Accepted bool
	// AckedSeq, when Acked is true, is the sequence number of the AdminMsg
	// the member just acknowledged.
	Acked    bool
	AckedSeq uint64
	// Closed is true when this step processed the member's ReqClose.
	Closed bool
}

// LeaderSession is the leader's engine for one member (the leader is the
// composition of one LeaderSession per user, exactly as in Section 4.1).
// It is not safe for concurrent use.
type LeaderSession struct {
	leader   string
	user     string
	longTerm *crypto.Cipher // cached AEAD under P_user

	phase       LeaderPhase
	sessionKey  crypto.Key
	session     *crypto.Cipher // cached AEAD under K_a; nil outside a session
	myNonce     crypto.Nonce   // N_l: our fresh nonce awaiting acknowledgment
	memberNonce crypto.Nonce   // N_a: the member's latest nonce

	pending []wire.AdminBody // admin bodies queued behind the outstanding one
	seq     uint64           // sequence of the next AdminMsg
	sentSeq uint64           // sequence of the outstanding AdminMsg
}

// NewLeaderSession returns a leader-side engine for the given user,
// authenticated by the shared long-term key P_user. The AEAD key schedules
// for P_user (and later K_a) are built once here and cached, so per-message
// sealing pays only the AEAD operation itself.
func NewLeaderSession(leader, user string, longTerm crypto.Key) (*LeaderSession, error) {
	if user == "" || leader == "" {
		return nil, fmt.Errorf("core: user and leader names must be non-empty")
	}
	if !longTerm.Valid() {
		return nil, fmt.Errorf("core: invalid long-term key")
	}
	lt, err := crypto.NewCipher(longTerm)
	if err != nil {
		return nil, err
	}
	return &LeaderSession{
		leader:   leader,
		user:     user,
		longTerm: lt,
		phase:    LeaderIdle,
	}, nil
}

// User returns the member's identity.
func (l *LeaderSession) User() string { return l.user }

// Phase returns the engine's current phase.
func (l *LeaderSession) Phase() LeaderPhase { return l.phase }

// PendingAdmin returns how many admin bodies are queued (excluding the
// outstanding unacknowledged one, if any).
func (l *LeaderSession) PendingAdmin() int { return len(l.pending) }

// SessionKey returns the session key; valid after the AuthInitReq has been
// accepted and until close.
func (l *LeaderSession) SessionKey() crypto.Key { return l.sessionKey }

// SentSeq returns the sequence number of the most recently emitted AdminMsg
// (zero before the first). Immediately after Send or a Handle that drained a
// Reply, this identifies the envelope just emitted, letting callers key
// retransmit tracking to the acknowledgment's AckedSeq.
func (l *LeaderSession) SentSeq() uint64 { return l.sentSeq }

// Handle feeds one received envelope to the engine. On rejection the engine
// state is unchanged and a typed error is returned.
func (l *LeaderSession) Handle(env wire.Envelope) (LeaderEvent, error) {
	switch env.Type {
	case wire.TypeAuthInitReq:
		return l.handleInitReq(env)
	case wire.TypeAuthAckKey:
		return l.handleKeyAck(env)
	case wire.TypeAck:
		return l.handleAck(env)
	case wire.TypeReqClose:
		return l.handleClose(env)
	default:
		return LeaderEvent{}, fmt.Errorf("%w: leader got %s", ErrState, env.Type)
	}
}

// handleInitReq processes {A, L, N1}_Pa: generate a fresh session key K_a
// and nonce N2, reply with {L, A, N1, N2, Ka}_Pa.
func (l *LeaderSession) handleInitReq(env wire.Envelope) (LeaderEvent, error) {
	if l.phase != LeaderIdle {
		return LeaderEvent{}, fmt.Errorf("%w: AuthInitReq in phase %s", ErrState, l.phase)
	}
	plain, err := l.longTerm.Open(env.Payload, env.Header())
	if err != nil {
		return LeaderEvent{}, fmt.Errorf("%w: init req: %v", ErrAuth, err)
	}
	p, err := wire.UnmarshalAuthInit(plain)
	if err != nil {
		return LeaderEvent{}, fmt.Errorf("%w: init req: %v", ErrAuth, err)
	}
	if p.User != l.user || p.Leader != l.leader {
		return LeaderEvent{}, fmt.Errorf("%w: init req names %q/%q", ErrIdentity, p.User, p.Leader)
	}

	ka, err := crypto.NewKey()
	if err != nil {
		return LeaderEvent{}, err
	}
	session, err := crypto.NewCipher(ka)
	if err != nil {
		return LeaderEvent{}, err
	}
	n2, err := crypto.NewNonce()
	if err != nil {
		return LeaderEvent{}, err
	}
	reply := wire.Envelope{Type: wire.TypeAuthKeyDist, Sender: l.leader, Receiver: l.user}
	dist := wire.AuthKeyDistPayload{Leader: l.leader, User: l.user, N1: p.N1, N2: n2, SessionKey: ka}
	box, err := l.longTerm.Seal(dist.Marshal(), reply.Header())
	if err != nil {
		return LeaderEvent{}, err
	}
	reply.Payload = box

	l.sessionKey = ka
	l.session = session
	l.myNonce = n2
	l.phase = LeaderWaitingForKeyAck
	return LeaderEvent{Reply: &reply}, nil
}

// handleKeyAck processes {A, L, N2, N3}_Ka: the member proves possession of
// the session key and freshness; it becomes a group member.
func (l *LeaderSession) handleKeyAck(env wire.Envelope) (LeaderEvent, error) {
	if l.phase != LeaderWaitingForKeyAck {
		return LeaderEvent{}, fmt.Errorf("%w: AuthAckKey in phase %s", ErrState, l.phase)
	}
	p, err := l.openAck(env)
	if err != nil {
		return LeaderEvent{}, err
	}
	if !p.NPrev.Equal(l.myNonce) {
		return LeaderEvent{}, fmt.Errorf("%w: key ack does not echo N2", ErrFreshness)
	}
	l.memberNonce = p.NNext
	l.phase = LeaderConnected
	ev := LeaderEvent{Accepted: true}
	if err := l.maybeSendNext(&ev); err != nil {
		return LeaderEvent{}, err
	}
	return ev, nil
}

// handleAck processes {A, L, N_{2i+2}, N_{2i+3}}_Ka acknowledging the
// outstanding AdminMsg, then drains the next queued body if any.
func (l *LeaderSession) handleAck(env wire.Envelope) (LeaderEvent, error) {
	if l.phase != LeaderWaitingForAck {
		return LeaderEvent{}, fmt.Errorf("%w: Ack in phase %s", ErrState, l.phase)
	}
	p, err := l.openAck(env)
	if err != nil {
		return LeaderEvent{}, err
	}
	if !p.NPrev.Equal(l.myNonce) {
		return LeaderEvent{}, fmt.Errorf("%w: ack does not echo our nonce", ErrFreshness)
	}
	l.memberNonce = p.NNext
	l.phase = LeaderConnected
	ev := LeaderEvent{Acked: true, AckedSeq: l.sentSeq}
	if err := l.maybeSendNext(&ev); err != nil {
		return LeaderEvent{}, err
	}
	return ev, nil
}

// openAck decrypts and validates the shared ack shape {A, L, N, N'}_Ka.
func (l *LeaderSession) openAck(env wire.Envelope) (wire.AckPayload, error) {
	plain, err := l.session.Open(env.Payload, env.Header())
	if err != nil {
		return wire.AckPayload{}, fmt.Errorf("%w: ack: %v", ErrAuth, err)
	}
	p, err := wire.UnmarshalAck(plain)
	if err != nil {
		return wire.AckPayload{}, fmt.Errorf("%w: ack: %v", ErrAuth, err)
	}
	if p.User != l.user || p.Leader != l.leader {
		return wire.AckPayload{}, fmt.Errorf("%w: ack names %q/%q", ErrIdentity, p.User, p.Leader)
	}
	return p, nil
}

// handleClose processes {A, L}_Ka: the session ends and the key is
// discarded (the model releases it via an Oops event — the pessimistic
// assumption the verification is carried out under).
func (l *LeaderSession) handleClose(env wire.Envelope) (LeaderEvent, error) {
	if l.phase == LeaderIdle || l.phase == LeaderClosed {
		return LeaderEvent{}, fmt.Errorf("%w: ReqClose in phase %s", ErrState, l.phase)
	}
	plain, err := l.session.Open(env.Payload, env.Header())
	if err != nil {
		return LeaderEvent{}, fmt.Errorf("%w: close: %v", ErrAuth, err)
	}
	p, err := wire.UnmarshalClose(plain)
	if err != nil {
		return LeaderEvent{}, fmt.Errorf("%w: close: %v", ErrAuth, err)
	}
	if p.User != l.user || p.Leader != l.leader {
		return LeaderEvent{}, fmt.Errorf("%w: close names %q/%q", ErrIdentity, p.User, p.Leader)
	}
	l.phase = LeaderClosed
	l.sessionKey.Zero()
	l.session = nil
	l.pending = nil
	return LeaderEvent{Closed: true}, nil
}

// Send queues a group-management body for delivery. If the pipeline is
// free (Connected with no outstanding AdminMsg) the AdminMsg envelope is
// returned immediately; otherwise it is queued and will be emitted by the
// LeaderEvent of a future acknowledgment. Send before the member is
// accepted queues the body for delivery right after acceptance.
func (l *LeaderSession) Send(body wire.AdminBody) (*wire.Envelope, error) {
	switch l.phase {
	case LeaderClosed:
		return nil, fmt.Errorf("%w: Send after close", ErrClosed)
	case LeaderConnected:
		return l.emitAdmin(body)
	default:
		l.pending = append(l.pending, body)
		return nil, nil
	}
}

// maybeSendNext drains the head of the pending queue into ev.Reply when the
// pipeline is free.
func (l *LeaderSession) maybeSendNext(ev *LeaderEvent) error {
	if l.phase != LeaderConnected || len(l.pending) == 0 {
		return nil
	}
	body := l.pending[0]
	l.pending = l.pending[1:]
	env, err := l.emitAdmin(body)
	if err != nil {
		return err
	}
	ev.Reply = env
	return nil
}

// emitAdmin builds {L, A, N_{2i+1}, N_{2i+2}, X}_Ka and moves to
// WaitingForAck.
func (l *LeaderSession) emitAdmin(body wire.AdminBody) (*wire.Envelope, error) {
	return l.emitAdminAs(wire.TypeAdminMsg, body)
}

// emitAdminAs is emitAdmin under an explicit envelope type: the resumption
// sub-protocol reuses the AdminMsg shape as its ResumeAck, with the type
// authenticated through the AEAD header.
func (l *LeaderSession) emitAdminAs(typ wire.Type, body wire.AdminBody) (*wire.Envelope, error) {
	next, err := crypto.NewNonce()
	if err != nil {
		return nil, err
	}
	env := wire.Envelope{Type: typ, Sender: l.leader, Receiver: l.user}
	l.seq++
	p := wire.AdminMsgPayload{
		Leader: l.leader,
		User:   l.user,
		NPrev:  l.memberNonce,
		NNext:  next,
		Seq:    l.seq,
		Body:   body,
	}
	box, err := l.session.Seal(p.Marshal(), env.Header())
	if err != nil {
		return nil, err
	}
	env.Payload = box
	l.myNonce = next
	l.sentSeq = l.seq
	l.phase = LeaderWaitingForAck
	return &env, nil
}
