package core

import (
	"fmt"

	"enclaves/internal/crypto"
	"enclaves/internal/wire"
)

// MemberPhase enumerates the member engine's states (Figure 2).
type MemberPhase uint8

// Member phases.
const (
	MemberNotConnected MemberPhase = iota + 1
	MemberWaitingForKey
	MemberConnected
	MemberClosed
	// MemberResuming: a Resume is outstanding against a promoted standby
	// (session-resumption sub-protocol, see resume.go).
	MemberResuming
)

func (p MemberPhase) String() string {
	switch p {
	case MemberNotConnected:
		return "NotConnected"
	case MemberWaitingForKey:
		return "WaitingForKey"
	case MemberConnected:
		return "Connected"
	case MemberClosed:
		return "Closed"
	case MemberResuming:
		return "Resuming"
	default:
		return "invalid"
	}
}

// MemberEvent is the outcome of feeding one envelope to a MemberSession.
type MemberEvent struct {
	// Reply, if non-nil, must be transmitted to the leader.
	Reply *wire.Envelope
	// Connected is true when this step completed the handshake.
	Connected bool
	// Admin, if non-nil, is a group-management payload accepted in order;
	// Seq is its leader-assigned sequence number within the session.
	Admin wire.AdminBody
	Seq   uint64
}

// MemberSession is the user-side engine of the improved protocol. It is not
// safe for concurrent use; drive it from a single goroutine.
type MemberSession struct {
	user     string
	leader   string
	longTerm *crypto.Cipher // cached AEAD under P_user

	phase      MemberPhase
	n1         crypto.Nonce // nonce of the outstanding AuthInitReq
	myNonce    crypto.Nonce // N_{2i+1}: the member's latest fresh nonce
	sessionKey crypto.Key
	session    *crypto.Cipher // cached AEAD under K_a; nil outside a session

	accepted uint64 // count of admin messages accepted this session
}

// NewMemberSession returns a member engine for the given user, using the
// long-term key P_user shared with the leader (see crypto.DeriveKey). As on
// the leader side, the AEAD key schedules are precomputed once per key.
func NewMemberSession(user, leader string, longTerm crypto.Key) (*MemberSession, error) {
	if user == "" || leader == "" {
		return nil, fmt.Errorf("core: user and leader names must be non-empty")
	}
	if !longTerm.Valid() {
		return nil, fmt.Errorf("core: invalid long-term key")
	}
	lt, err := crypto.NewCipher(longTerm)
	if err != nil {
		return nil, err
	}
	return &MemberSession{
		user:     user,
		leader:   leader,
		longTerm: lt,
		phase:    MemberNotConnected,
	}, nil
}

// User returns the member's identity.
func (m *MemberSession) User() string { return m.user }

// Leader returns the leader's identity.
func (m *MemberSession) Leader() string { return m.leader }

// Phase returns the engine's current phase.
func (m *MemberSession) Phase() MemberPhase { return m.phase }

// Accepted returns how many group-management messages have been accepted in
// this session (the length of rcv_A in the model).
func (m *MemberSession) Accepted() uint64 { return m.accepted }

// SessionKey returns the established session key; it is only valid while
// Connected.
func (m *MemberSession) SessionKey() crypto.Key { return m.sessionKey }

// Start begins the join protocol: it returns the AuthInitReq envelope
// (message 1 of Section 3.2) and moves to WaitingForKey.
func (m *MemberSession) Start() (wire.Envelope, error) {
	if m.phase != MemberNotConnected {
		return wire.Envelope{}, fmt.Errorf("%w: Start in phase %s", ErrState, m.phase)
	}
	n1, err := crypto.NewNonce()
	if err != nil {
		return wire.Envelope{}, err
	}
	env := wire.Envelope{Type: wire.TypeAuthInitReq, Sender: m.user, Receiver: m.leader}
	payload := wire.AuthInitPayload{User: m.user, Leader: m.leader, N1: n1}
	box, err := m.longTerm.Seal(payload.Marshal(), env.Header())
	if err != nil {
		return wire.Envelope{}, err
	}
	env.Payload = box
	m.n1 = n1
	m.phase = MemberWaitingForKey
	return env, nil
}

// Handle feeds one received envelope to the engine. On rejection the engine
// state is unchanged and a typed error is returned; the session remains
// usable.
func (m *MemberSession) Handle(env wire.Envelope) (MemberEvent, error) {
	switch env.Type {
	case wire.TypeAuthKeyDist:
		return m.handleKeyDist(env)
	case wire.TypeAdminMsg:
		return m.handleAdmin(env)
	case wire.TypeResumeAck:
		return m.handleResumeAck(env)
	default:
		return MemberEvent{}, fmt.Errorf("%w: member got %s", ErrState, env.Type)
	}
}

// handleKeyDist processes message 2 of the authentication protocol,
// {L, A, N1, N2, Ka}_Pa, and replies with message 3, {A, L, N2, N3}_Ka.
func (m *MemberSession) handleKeyDist(env wire.Envelope) (MemberEvent, error) {
	if m.phase != MemberWaitingForKey {
		return MemberEvent{}, fmt.Errorf("%w: AuthKeyDist in phase %s", ErrState, m.phase)
	}
	plain, err := m.longTerm.Open(env.Payload, env.Header())
	if err != nil {
		return MemberEvent{}, fmt.Errorf("%w: key dist: %v", ErrAuth, err)
	}
	p, err := wire.UnmarshalAuthKeyDist(plain)
	if err != nil {
		return MemberEvent{}, fmt.Errorf("%w: key dist: %v", ErrAuth, err)
	}
	if p.Leader != m.leader || p.User != m.user {
		return MemberEvent{}, fmt.Errorf("%w: key dist names %q/%q", ErrIdentity, p.Leader, p.User)
	}
	if !p.N1.Equal(m.n1) {
		return MemberEvent{}, fmt.Errorf("%w: key dist does not echo our N1", ErrFreshness)
	}

	session, err := crypto.NewCipher(p.SessionKey)
	if err != nil {
		return MemberEvent{}, err
	}
	n3, err := crypto.NewNonce()
	if err != nil {
		return MemberEvent{}, err
	}
	reply := wire.Envelope{Type: wire.TypeAuthAckKey, Sender: m.user, Receiver: m.leader}
	ack := wire.AckPayload{User: m.user, Leader: m.leader, NPrev: p.N2, NNext: n3}
	box, err := session.Seal(ack.Marshal(), reply.Header())
	if err != nil {
		return MemberEvent{}, err
	}
	reply.Payload = box

	m.sessionKey = p.SessionKey
	m.session = session
	m.myNonce = n3
	m.phase = MemberConnected
	m.accepted = 0
	return MemberEvent{Reply: &reply, Connected: true}, nil
}

// handleAdmin processes a group-management message
// {L, A, N_{2i+1}, N_{2i+2}, X}_Ka and acknowledges it with
// {A, L, N_{2i+2}, N_{2i+3}}_Ka (Section 3.2).
func (m *MemberSession) handleAdmin(env wire.Envelope) (MemberEvent, error) {
	if m.phase != MemberConnected {
		return MemberEvent{}, fmt.Errorf("%w: AdminMsg in phase %s", ErrState, m.phase)
	}
	plain, err := m.session.Open(env.Payload, env.Header())
	if err != nil {
		return MemberEvent{}, fmt.Errorf("%w: admin msg: %v", ErrAuth, err)
	}
	p, err := wire.UnmarshalAdminMsg(plain)
	if err != nil {
		return MemberEvent{}, fmt.Errorf("%w: admin msg: %v", ErrAuth, err)
	}
	if p.Leader != m.leader || p.User != m.user {
		return MemberEvent{}, fmt.Errorf("%w: admin msg names %q/%q", ErrIdentity, p.Leader, p.User)
	}
	// The message must carry the nonce we generated most recently; an old
	// captured AdminMsg carries an older nonce and is rejected here. This
	// is the guard that defeats the Section 2.3 replay attacks.
	if !p.NPrev.Equal(m.myNonce) {
		return MemberEvent{}, fmt.Errorf("%w: admin msg carries stale nonce", ErrFreshness)
	}

	next, err := crypto.NewNonce()
	if err != nil {
		return MemberEvent{}, err
	}
	reply := wire.Envelope{Type: wire.TypeAck, Sender: m.user, Receiver: m.leader}
	ack := wire.AckPayload{User: m.user, Leader: m.leader, NPrev: p.NNext, NNext: next}
	box, err := m.session.Seal(ack.Marshal(), reply.Header())
	if err != nil {
		return MemberEvent{}, err
	}
	reply.Payload = box

	m.myNonce = next
	m.accepted++
	return MemberEvent{Reply: &reply, Admin: p.Body, Seq: p.Seq}, nil
}

// Leave ends the session: it returns the ReqClose envelope {A, L}_Ka and
// moves to Closed. At most one close exists per session key, so the message
// cannot be replayed into a different session.
func (m *MemberSession) Leave() (wire.Envelope, error) {
	if m.phase != MemberConnected {
		return wire.Envelope{}, fmt.Errorf("%w: Leave in phase %s", ErrState, m.phase)
	}
	env := wire.Envelope{Type: wire.TypeReqClose, Sender: m.user, Receiver: m.leader}
	payload := wire.ClosePayload{User: m.user, Leader: m.leader}
	box, err := m.session.Seal(payload.Marshal(), env.Header())
	if err != nil {
		return wire.Envelope{}, err
	}
	env.Payload = box
	m.phase = MemberClosed
	m.sessionKey.Zero()
	m.session = nil
	return env, nil
}
