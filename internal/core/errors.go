package core

import "errors"

// Engine rejection errors. All of them are non-fatal: the engine state is
// unchanged and the caller may keep feeding messages.
var (
	// ErrState reports a message that is not acceptable in the current
	// phase (e.g. an AdminMsg before the handshake completed).
	ErrState = errors.New("core: message not acceptable in current state")

	// ErrAuth reports a message that failed decryption or authentication —
	// a forgery, a corruption, or traffic under a stale key.
	ErrAuth = errors.New("core: message failed authentication")

	// ErrIdentity reports a message whose encrypted identities do not match
	// the session's endpoints.
	ErrIdentity = errors.New("core: encrypted identities do not match session")

	// ErrFreshness reports a replay: the message does not carry the nonce
	// the engine expects.
	ErrFreshness = errors.New("core: freshness check failed (replay)")

	// ErrClosed reports an operation on a closed session.
	ErrClosed = errors.New("core: session closed")
)
