package core

import (
	"errors"
	"testing"

	"enclaves/internal/crypto"
	"enclaves/internal/wire"
)

const (
	testUser   = "alice"
	testLeader = "leader"
)

func newPair(t *testing.T) (*MemberSession, *LeaderSession) {
	t.Helper()
	longTerm := crypto.DeriveKey(testUser, testLeader, "correct horse battery")
	m, err := NewMemberSession(testUser, testLeader, longTerm)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLeaderSession(testLeader, testUser, longTerm)
	if err != nil {
		t.Fatal(err)
	}
	return m, l
}

// handshake drives the three-message join to completion and returns the
// exchanged envelopes for replay tests.
func handshake(t *testing.T, m *MemberSession, l *LeaderSession) (initReq, keyDist, keyAck wire.Envelope) {
	t.Helper()
	initReq, err := m.Start()
	if err != nil {
		t.Fatal(err)
	}
	lev, err := l.Handle(initReq)
	if err != nil {
		t.Fatal(err)
	}
	if lev.Reply == nil || lev.Reply.Type != wire.TypeAuthKeyDist {
		t.Fatalf("leader reply = %v", lev.Reply)
	}
	keyDist = *lev.Reply
	mev, err := m.Handle(keyDist)
	if err != nil {
		t.Fatal(err)
	}
	if !mev.Connected || mev.Reply == nil || mev.Reply.Type != wire.TypeAuthAckKey {
		t.Fatalf("member event = %+v", mev)
	}
	keyAck = *mev.Reply
	lev, err = l.Handle(keyAck)
	if err != nil {
		t.Fatal(err)
	}
	if !lev.Accepted {
		t.Fatal("leader did not accept the member")
	}
	return initReq, keyDist, keyAck
}

// adminRound delivers one admin body end to end and returns the AdminMsg
// envelope.
func adminRound(t *testing.T, m *MemberSession, l *LeaderSession, body wire.AdminBody) wire.Envelope {
	t.Helper()
	envp, err := l.Send(body)
	if err != nil {
		t.Fatal(err)
	}
	if envp == nil {
		t.Fatal("Send did not emit an AdminMsg with a free pipeline")
	}
	mev, err := m.Handle(*envp)
	if err != nil {
		t.Fatal(err)
	}
	if mev.Admin == nil || mev.Reply == nil {
		t.Fatalf("member event = %+v", mev)
	}
	lev, err := l.Handle(*mev.Reply)
	if err != nil {
		t.Fatal(err)
	}
	if !lev.Acked {
		t.Fatal("leader did not register the ack")
	}
	return *envp
}

func TestHandshake(t *testing.T) {
	m, l := newPair(t)
	handshake(t, m, l)
	if m.Phase() != MemberConnected {
		t.Errorf("member phase = %s", m.Phase())
	}
	if l.Phase() != LeaderConnected {
		t.Errorf("leader phase = %s", l.Phase())
	}
	if !m.SessionKey().Equal(l.SessionKey()) {
		t.Error("session keys disagree after handshake")
	}
}

func TestHandshakeFreshKeysPerSession(t *testing.T) {
	m1, l1 := newPair(t)
	handshake(t, m1, l1)
	m2, l2 := newPair(t)
	handshake(t, m2, l2)
	if m1.SessionKey().Equal(m2.SessionKey()) {
		t.Error("two sessions share a session key")
	}
}

func TestAdminDelivery(t *testing.T) {
	m, l := newPair(t)
	handshake(t, m, l)

	envp, err := l.Send(wire.MemberJoined{Name: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	mev, err := m.Handle(*envp)
	if err != nil {
		t.Fatal(err)
	}
	joined, ok := mev.Admin.(wire.MemberJoined)
	if !ok || joined.Name != "bob" {
		t.Fatalf("admin body = %v", mev.Admin)
	}
	if mev.Seq != 1 {
		t.Errorf("seq = %d, want 1", mev.Seq)
	}
	lev, err := l.Handle(*mev.Reply)
	if err != nil {
		t.Fatal(err)
	}
	if !lev.Acked || lev.AckedSeq != 1 {
		t.Errorf("leader ack event = %+v", lev)
	}
	if m.Accepted() != 1 {
		t.Errorf("member accepted count = %d", m.Accepted())
	}
}

func TestAdminPipelineOrder(t *testing.T) {
	m, l := newPair(t)
	handshake(t, m, l)

	// Queue three bodies; only the first is emitted immediately.
	first, err := l.Send(wire.MemberJoined{Name: "m1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"m2", "m3"} {
		envp, err := l.Send(wire.MemberJoined{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		if envp != nil {
			t.Fatal("pipeline emitted a second outstanding AdminMsg")
		}
	}
	if l.PendingAdmin() != 2 {
		t.Fatalf("pending = %d, want 2", l.PendingAdmin())
	}

	// Drain: each ack releases the next message, in order.
	env := first
	for i, want := range []string{"m1", "m2", "m3"} {
		mev, err := m.Handle(*env)
		if err != nil {
			t.Fatalf("admin %d: %v", i, err)
		}
		if got := mev.Admin.(wire.MemberJoined).Name; got != want {
			t.Fatalf("admin %d: got %q want %q", i, got, want)
		}
		lev, err := l.Handle(*mev.Reply)
		if err != nil {
			t.Fatal(err)
		}
		env = lev.Reply // next drained AdminMsg (nil after the last)
	}
	if env != nil {
		t.Error("pipeline emitted an extra message")
	}
	if m.Accepted() != 3 {
		t.Errorf("accepted = %d, want 3", m.Accepted())
	}
}

func TestSendBeforeAcceptanceQueues(t *testing.T) {
	m, l := newPair(t)
	initReq, _ := m.Start()
	lev, _ := l.Handle(initReq)

	// Queue while waiting for the key ack.
	envp, err := l.Send(wire.MemberJoined{Name: "early"})
	if err != nil {
		t.Fatal(err)
	}
	if envp != nil {
		t.Fatal("AdminMsg emitted before the member was accepted")
	}

	mev, _ := m.Handle(*lev.Reply)
	lev2, err := l.Handle(*mev.Reply)
	if err != nil {
		t.Fatal(err)
	}
	if !lev2.Accepted || lev2.Reply == nil || lev2.Reply.Type != wire.TypeAdminMsg {
		t.Fatalf("queued AdminMsg not drained on acceptance: %+v", lev2)
	}
	mev2, err := m.Handle(*lev2.Reply)
	if err != nil {
		t.Fatal(err)
	}
	if mev2.Admin.(wire.MemberJoined).Name != "early" {
		t.Errorf("admin = %v", mev2.Admin)
	}
}

func TestAdminReplayRejected(t *testing.T) {
	m, l := newPair(t)
	handshake(t, m, l)
	adminEnv := adminRound(t, m, l, wire.MemberJoined{Name: "bob"})

	// Replaying the captured AdminMsg must fail the freshness check.
	if _, err := m.Handle(adminEnv); !errors.Is(err, ErrFreshness) {
		t.Errorf("replay accepted: err = %v, want ErrFreshness", err)
	}
	if m.Accepted() != 1 {
		t.Errorf("accepted advanced on replay: %d", m.Accepted())
	}
}

func TestAckReplayRejected(t *testing.T) {
	m, l := newPair(t)
	handshake(t, m, l)

	envp, _ := l.Send(wire.MemberJoined{Name: "bob"})
	mev, _ := m.Handle(*envp)
	if _, err := l.Handle(*mev.Reply); err != nil {
		t.Fatal(err)
	}
	// Send another admin so the leader is waiting again, then replay the
	// old ack: its NPrev no longer matches the leader's nonce.
	if _, err := l.Send(wire.MemberJoined{Name: "carol"}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Handle(*mev.Reply); !errors.Is(err, ErrFreshness) {
		t.Errorf("stale ack accepted: err = %v", err)
	}
}

func TestKeyDistReplayAcrossSessionsRejected(t *testing.T) {
	longTerm := crypto.DeriveKey(testUser, testLeader, "pw")
	m1, _ := NewMemberSession(testUser, testLeader, longTerm)
	l1, _ := NewLeaderSession(testLeader, testUser, longTerm)
	init1, _ := m1.Start()
	lev1, _ := l1.Handle(init1)
	keyDist1 := *lev1.Reply

	// A second session: the stale key distribution echoes the OLD N1 and
	// must be rejected by the new session.
	m2, _ := NewMemberSession(testUser, testLeader, longTerm)
	if _, err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Handle(keyDist1); !errors.Is(err, ErrFreshness) {
		t.Errorf("stale AuthKeyDist accepted: err = %v", err)
	}
}

func TestForgedAdminRejected(t *testing.T) {
	m, l := newPair(t)
	handshake(t, m, l)

	// Forge an AdminMsg under a key the attacker controls.
	evilKey, _ := crypto.NewKey()
	env := wire.Envelope{Type: wire.TypeAdminMsg, Sender: testLeader, Receiver: testUser}
	p := wire.AdminMsgPayload{Leader: testLeader, User: testUser, Seq: 9, Body: wire.MemberLeft{Name: "bob"}}
	box, _ := crypto.Seal(evilKey, p.Marshal(), env.Header())
	env.Payload = box
	if _, err := m.Handle(env); !errors.Is(err, ErrAuth) {
		t.Errorf("forged AdminMsg accepted: err = %v", err)
	}
	_ = l
}

func TestRelabeledEnvelopeRejected(t *testing.T) {
	m, l := newPair(t)
	initReq, _ := m.Start()
	lev, _ := l.Handle(initReq)

	// Relabel the AuthKeyDist as an AdminMsg: the AEAD header binding must
	// reject it even before state checks could confuse it.
	relabeled := *lev.Reply
	relabeled.Type = wire.TypeAdminMsg
	if _, err := m.Handle(relabeled); !errors.Is(err, ErrState) && !errors.Is(err, ErrAuth) {
		t.Errorf("relabeled envelope: err = %v", err)
	}
	// Proper delivery still works afterwards.
	if _, err := m.Handle(*lev.Reply); err != nil {
		t.Errorf("genuine delivery after rejection: %v", err)
	}
}

func TestTamperedPayloadRejected(t *testing.T) {
	m, l := newPair(t)
	initReq, _ := m.Start()
	lev, _ := l.Handle(initReq)
	tampered := *lev.Reply
	tampered.Payload = append([]byte(nil), tampered.Payload...)
	tampered.Payload[len(tampered.Payload)/2] ^= 0x40
	if _, err := m.Handle(tampered); !errors.Is(err, ErrAuth) {
		t.Errorf("tampered payload: err = %v", err)
	}
}

func TestWrongPasswordCannotJoin(t *testing.T) {
	goodKey := crypto.DeriveKey(testUser, testLeader, "right")
	badKey := crypto.DeriveKey(testUser, testLeader, "wrong")
	m, _ := NewMemberSession(testUser, testLeader, badKey)
	l, _ := NewLeaderSession(testLeader, testUser, goodKey)
	initReq, _ := m.Start()
	if _, err := l.Handle(initReq); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong password accepted: err = %v", err)
	}
}

func TestIdentityMismatchRejected(t *testing.T) {
	// The leader session is for "mallory" but the encrypted payload names
	// alice: the identity check (not just the key) must fire. Use the same
	// long-term key for both to isolate the identity check.
	shared, _ := crypto.NewKey()
	m, _ := NewMemberSession(testUser, testLeader, shared)
	l, _ := NewLeaderSession(testLeader, "mallory", shared)
	initReq, _ := m.Start()
	// Rewrite the envelope header to mallory so the AEAD check passes...
	// it will not, because the header is bound. Instead craft the envelope
	// as mallory would see it delivered: header must match what was
	// sealed, so leader's Open succeeds only with the original header, and
	// then the encrypted identity check fires.
	if _, err := l.Handle(initReq); !errors.Is(err, ErrAuth) && !errors.Is(err, ErrIdentity) {
		t.Errorf("identity mismatch: err = %v", err)
	}
}

func TestLeaveAndClose(t *testing.T) {
	m, l := newPair(t)
	handshake(t, m, l)
	closeEnv, err := m.Leave()
	if err != nil {
		t.Fatal(err)
	}
	if m.Phase() != MemberClosed {
		t.Errorf("member phase = %s", m.Phase())
	}
	if m.SessionKey().Valid() {
		t.Error("member session key not zeroized on leave")
	}
	lev, err := l.Handle(closeEnv)
	if err != nil {
		t.Fatal(err)
	}
	if !lev.Closed || l.Phase() != LeaderClosed {
		t.Errorf("leader did not close: %+v phase=%s", lev, l.Phase())
	}
	if l.SessionKey().Valid() {
		t.Error("leader session key not zeroized on close")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	m, l := newPair(t)
	handshake(t, m, l)
	closeEnv, _ := m.Leave()
	if _, err := l.Handle(closeEnv); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Send(wire.MemberJoined{Name: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: err = %v", err)
	}
}

func TestCloseReplayDoesNothing(t *testing.T) {
	m, l := newPair(t)
	handshake(t, m, l)
	closeEnv, _ := m.Leave()
	if _, err := l.Handle(closeEnv); err != nil {
		t.Fatal(err)
	}
	// Replaying the close against the closed session is a state error; the
	// session key is gone so nothing can be derived from it.
	if _, err := l.Handle(closeEnv); !errors.Is(err, ErrState) {
		t.Errorf("close replay: err = %v", err)
	}
}

func TestCloseCannotCrossSessions(t *testing.T) {
	longTerm := crypto.DeriveKey(testUser, testLeader, "pw")

	// Session 1 completes and closes; capture its ReqClose.
	m1, _ := NewMemberSession(testUser, testLeader, longTerm)
	l1, _ := NewLeaderSession(testLeader, testUser, longTerm)
	handshake(t, m1, l1)
	close1, _ := m1.Leave()
	if _, err := l1.Handle(close1); err != nil {
		t.Fatal(err)
	}

	// Session 2 is fresh; the captured close is under the old key.
	m2, _ := NewMemberSession(testUser, testLeader, longTerm)
	l2, _ := NewLeaderSession(testLeader, testUser, longTerm)
	handshake(t, m2, l2)
	if _, err := l2.Handle(close1); !errors.Is(err, ErrAuth) {
		t.Errorf("cross-session close accepted: err = %v", err)
	}
	if l2.Phase() != LeaderConnected {
		t.Errorf("leader phase changed on rejected close: %s", l2.Phase())
	}
}

func TestStateErrors(t *testing.T) {
	m, l := newPair(t)

	// Member: admin before handshake.
	env := wire.Envelope{Type: wire.TypeAdminMsg, Payload: []byte("x")}
	if _, err := m.Handle(env); !errors.Is(err, ErrState) {
		t.Errorf("admin in NotConnected: %v", err)
	}
	// Member: leave before connected.
	if _, err := m.Leave(); !errors.Is(err, ErrState) {
		t.Errorf("leave in NotConnected: %v", err)
	}
	// Leader: ack before handshake.
	if _, err := l.Handle(wire.Envelope{Type: wire.TypeAck, Payload: []byte("x")}); !errors.Is(err, ErrState) {
		t.Errorf("ack in Idle: %v", err)
	}
	// Leader: close before handshake.
	if _, err := l.Handle(wire.Envelope{Type: wire.TypeReqClose, Payload: []byte("x")}); !errors.Is(err, ErrState) {
		t.Errorf("close in Idle: %v", err)
	}
	// Unknown types.
	if _, err := m.Handle(wire.Envelope{Type: wire.TypeAppData}); !errors.Is(err, ErrState) {
		t.Errorf("app data to member engine: %v", err)
	}
	if _, err := l.Handle(wire.Envelope{Type: wire.TypeAppData}); !errors.Is(err, ErrState) {
		t.Errorf("app data to leader engine: %v", err)
	}

	// Double Start.
	if _, err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(); !errors.Is(err, ErrState) {
		t.Errorf("double Start: %v", err)
	}
}

func TestConstructorValidation(t *testing.T) {
	k, _ := crypto.NewKey()
	if _, err := NewMemberSession("", testLeader, k); err == nil {
		t.Error("empty user accepted")
	}
	if _, err := NewMemberSession(testUser, "", k); err == nil {
		t.Error("empty leader accepted")
	}
	if _, err := NewMemberSession(testUser, testLeader, crypto.Key{}); err == nil {
		t.Error("invalid key accepted")
	}
	if _, err := NewLeaderSession("", testUser, k); err == nil {
		t.Error("empty leader accepted")
	}
	if _, err := NewLeaderSession(testLeader, testUser, crypto.Key{}); err == nil {
		t.Error("invalid key accepted")
	}
}

func TestPhaseStrings(t *testing.T) {
	if MemberWaitingForKey.String() != "WaitingForKey" || LeaderWaitingForAck.String() != "WaitingForAck" {
		t.Error("phase names wrong")
	}
}

// TestInterleavedSessionsIndependent runs two member/leader pairs in
// lockstep and checks that messages cannot cross between them.
func TestInterleavedSessionsIndependent(t *testing.T) {
	ltA := crypto.DeriveKey("alice", testLeader, "pa")
	ltB := crypto.DeriveKey("bob", testLeader, "pb")
	ma, _ := NewMemberSession("alice", testLeader, ltA)
	la, _ := NewLeaderSession(testLeader, "alice", ltA)
	mb, _ := NewMemberSession("bob", testLeader, ltB)
	lb, _ := NewLeaderSession(testLeader, "bob", ltB)

	initA, _ := ma.Start()
	initB, _ := mb.Start()

	// Cross-delivery must fail: bob's request to alice's leader session.
	if _, err := la.Handle(initB); !errors.Is(err, ErrAuth) {
		t.Errorf("cross-user init accepted: %v", err)
	}

	levA, _ := la.Handle(initA)
	levB, _ := lb.Handle(initB)

	// Cross key distributions must fail.
	if _, err := ma.Handle(*levB.Reply); !errors.Is(err, ErrAuth) {
		t.Errorf("cross key dist accepted: %v", err)
	}
	mevA, err := ma.Handle(*levA.Reply)
	if err != nil {
		t.Fatal(err)
	}
	mevB, err := mb.Handle(*levB.Reply)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := la.Handle(*mevB.Reply); !errors.Is(err, ErrAuth) {
		t.Errorf("cross key ack accepted: %v", err)
	}
	if _, err := la.Handle(*mevA.Reply); err != nil {
		t.Fatal(err)
	}
	if _, err := lb.Handle(*mevB.Reply); err != nil {
		t.Fatal(err)
	}
}
