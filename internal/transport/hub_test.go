package transport

import (
	"testing"

	"enclaves/internal/wire"
)

func TestLinkDeliversBothDirections(t *testing.T) {
	l := NewLink()
	defer l.Close()
	a, b := l.ASide(), l.BSide()

	if err := a.Send(env(wire.TypeAck, "a", "to-b")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "to-b" {
		t.Errorf("payload = %q", got.Payload)
	}

	if err := b.Send(env(wire.TypeAck, "b", "to-a")); err != nil {
		t.Fatal(err)
	}
	got, err = a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "to-a" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestLinkCapturesEverything(t *testing.T) {
	l := NewLink()
	defer l.Close()
	a, b := l.ASide(), l.BSide()

	a.Send(env(wire.TypeAuthInitReq, "a", "one"))
	b.Send(env(wire.TypeAuthKeyDist, "b", "two"))
	a.Send(env(wire.TypeAuthAckKey, "a", "three"))

	cap := l.Captured()
	if len(cap) != 3 {
		t.Fatalf("captured %d frames, want 3", len(cap))
	}
	if cap[0].Dir != AToB || cap[1].Dir != BToA || cap[2].Dir != AToB {
		t.Errorf("directions = %v %v %v", cap[0].Dir, cap[1].Dir, cap[2].Dir)
	}
	if string(cap[1].Env.Payload) != "two" {
		t.Errorf("capture order wrong: %q", cap[1].Env.Payload)
	}
}

func TestLinkFilterDrops(t *testing.T) {
	l := NewLink()
	defer l.Close()
	a, b := l.ASide(), l.BSide()

	l.SetFilter(func(d Direction, e wire.Envelope) bool {
		return e.Type != wire.TypeAck // drop all acks
	})
	if err := a.Send(env(wire.TypeAck, "a", "dropped")); err != nil {
		t.Fatal(err) // sender cannot tell
	}
	if err := a.Send(env(wire.TypeAppData, "a", "delivered")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "delivered" {
		t.Errorf("got %q, dropped frame was delivered", got.Payload)
	}
	// Dropped frames are still captured (the adversary observed them).
	if len(l.Captured()) != 2 {
		t.Errorf("captured %d, want 2", len(l.Captured()))
	}
}

func TestLinkInject(t *testing.T) {
	l := NewLink()
	defer l.Close()
	b := l.BSide()

	forged := env(wire.TypeConnDenied, "leader", "denied")
	if err := l.Inject(AToB, forged); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != wire.TypeConnDenied {
		t.Errorf("injected frame type = %v", got.Type)
	}
	// Injected frames are not captures of endpoint traffic.
	if len(l.Captured()) != 0 {
		t.Error("injection polluted the capture log")
	}
}

func TestLinkReplay(t *testing.T) {
	l := NewLink()
	defer l.Close()
	a, b := l.ASide(), l.BSide()

	a.Send(env(wire.TypeNewKey, "l", "old-key"))
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}

	if err := l.Replay(0); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "old-key" {
		t.Errorf("replayed payload = %q", got.Payload)
	}

	if err := l.Replay(7); err == nil {
		t.Error("out-of-range replay succeeded")
	}
	if err := l.Replay(-1); err == nil {
		t.Error("negative replay succeeded")
	}
}

func TestLinkReplayMatching(t *testing.T) {
	l := NewLink()
	defer l.Close()
	a, b := l.ASide(), l.BSide()

	a.Send(env(wire.TypeNewKey, "l", "k1"))
	a.Send(env(wire.TypeAppData, "l", "d1"))
	a.Send(env(wire.TypeNewKey, "l", "k2"))
	for i := 0; i < 3; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}

	n, err := l.ReplayMatching(func(c Captured) bool { return c.Env.Type == wire.TypeNewKey })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d, want 2", n)
	}
	for _, want := range []string{"k1", "k2"} {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(got.Payload) != want {
			t.Errorf("replay payload = %q want %q", got.Payload, want)
		}
	}
}

func TestLinkCloseUnblocks(t *testing.T) {
	l := NewLink()
	a := l.ASide()
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	l.Close()
	if err := <-done; err == nil {
		t.Error("Recv on closed link succeeded")
	}
}
