// Package transport provides the point-to-point links of the Enclaves
// architecture (Figure 1): an in-memory network for tests and examples, a
// TCP transport for deployment, and an adversarial hub that gives a
// Dolev-Yao attacker full control of the network — observation, dropping,
// injection, duplication and replay of frames — matching the threat model
// of Section 3.1 ("compromised participants and outsiders can read all the
// messages exchanged, replay old messages, and send arbitrary messages they
// can construct").
package transport

import (
	"errors"
	"sync"

	"enclaves/internal/metrics"
	"enclaves/internal/queue"
	"enclaves/internal/wire"
)

// Transport-wide instruments, shared by the in-memory pipe and the TCP
// adapter so a snapshot reports total wire traffic regardless of medium.
// Bytes count ciphertext payloads, the dominant term of frame size.
var (
	mFramesSent = metrics.NewCounter("transport_frames_sent_total")
	mFramesRecv = metrics.NewCounter("transport_frames_recv_total")
	mBytesSent  = metrics.NewCounter("transport_bytes_sent_total")
	mBytesRecv  = metrics.NewCounter("transport_bytes_recv_total")
)

func countSend(e wire.Envelope) {
	mFramesSent.Inc()
	mBytesSent.Add(uint64(len(e.Payload)))
}

func countRecv(e wire.Envelope) {
	mFramesRecv.Inc()
	mBytesRecv.Add(uint64(len(e.Payload)))
}

// ErrClosed is returned by operations on a closed connection or listener.
var ErrClosed = errors.New("transport: closed")

// Encoded is an envelope paired with its lazily computed wire frame, built
// once and shared across a fan-out: the leader relay wraps the envelope in
// one Encoded and hands the same value to every member's connection.
// Byte-stream transports encode the frame on first use and then write the
// identical bytes N times; message-oriented transports (pipes, links) never
// trigger the encoding at all. Safe for concurrent use; the frame bytes
// must be treated as immutable by every consumer.
type Encoded struct {
	env  wire.Envelope
	once sync.Once
	raw  []byte
	err  error
}

// NewEncoded wraps an envelope for encode-once fan-out.
func NewEncoded(env wire.Envelope) *Encoded { return &Encoded{env: env} }

// Env returns the wrapped envelope.
func (e *Encoded) Env() wire.Envelope { return e.env }

// Frame returns the complete length-prefixed frame (wire.EncodeFrame),
// encoding on first call and reusing the bytes for every later one.
func (e *Encoded) Frame() ([]byte, error) {
	e.once.Do(func() { e.raw, e.err = wire.EncodeFrame(e.env) })
	return e.raw, e.err
}

// Outgoing is one element of a batched send: either a plain envelope or a
// shared pre-encoded frame (Enc non-nil, in which case Env is ignored).
type Outgoing struct {
	Env wire.Envelope
	Enc *Encoded
}

// Envelope returns the envelope being sent, whichever form carries it.
func (o Outgoing) Envelope() wire.Envelope {
	if o.Enc != nil {
		return o.Enc.env
	}
	return o.Env
}

// Conn is a bidirectional, message-oriented point-to-point link.
// Implementations are safe for concurrent use.
type Conn interface {
	// Send transmits one envelope.
	Send(wire.Envelope) error
	// SendEncoded transmits an envelope whose wire frame is shared across
	// a fan-out; byte-stream transports write the pre-encoded bytes
	// instead of re-encoding per connection.
	SendEncoded(*Encoded) error
	// SendBatch transmits the batch in order with at most one flush, so a
	// drained outbox costs one syscall instead of one per frame.
	SendBatch([]Outgoing) error
	// Recv blocks until an envelope arrives or the connection closes.
	Recv() (wire.Envelope, error)
	// Close tears the connection down; pending and future Recv calls
	// return ErrClosed (or io errors for network transports).
	Close() error
}

// SendEach implements SendBatch by individual Sends, for message-oriented
// transports that have no flush boundary to batch against.
func SendEach(c Conn, batch []Outgoing) error {
	for _, o := range batch {
		if err := c.Send(o.Envelope()); err != nil {
			return err
		}
	}
	return nil
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks until a connection arrives.
	Accept() (Conn, error)
	// Addr returns the listen address.
	Addr() string
	// Close stops the listener.
	Close() error
}

// envQueue is the unbounded envelope FIFO backing in-memory links. Its
// unboundedness mirrors the asynchronous network of the formal model (the
// network never refuses a message); back-pressure is applied at the
// protocol layer, which allows only one outstanding AdminMsg per member.
type envQueue = queue.Queue[wire.Envelope]

func newQueue() *envQueue { return queue.New[wire.Envelope]() }

// pipeConn is one endpoint of an in-memory duplex pipe.
type pipeConn struct {
	recv *envQueue
	peer *envQueue

	closeOnce sync.Once
}

var _ Conn = (*pipeConn)(nil)

// Pipe returns two connected in-memory endpoints: frames sent on one are
// received on the other, in order, with no interference.
func Pipe() (Conn, Conn) {
	qa, qb := newQueue(), newQueue()
	return &pipeConn{recv: qa, peer: qb}, &pipeConn{recv: qb, peer: qa}
}

func (c *pipeConn) Send(e wire.Envelope) error {
	if err := translatePushErr(c.peer.Push(e)); err != nil {
		return err
	}
	countSend(e)
	return nil
}

func (c *pipeConn) SendEncoded(enc *Encoded) error { return c.Send(enc.env) }

func (c *pipeConn) SendBatch(batch []Outgoing) error { return SendEach(c, batch) }

func (c *pipeConn) Recv() (wire.Envelope, error) {
	e, err := translateErr(c.recv.Pop())
	if err == nil {
		countRecv(e)
	}
	return e, err
}

func (c *pipeConn) Close() error {
	c.closeOnce.Do(func() {
		c.recv.Close()
		c.peer.Close()
	})
	return nil
}

// translateErr maps queue closure onto the transport's ErrClosed.
func translateErr(e wire.Envelope, err error) (wire.Envelope, error) {
	if errors.Is(err, queue.ErrClosed) {
		return e, ErrClosed
	}
	return e, err
}

func translatePushErr(err error) error {
	if errors.Is(err, queue.ErrClosed) {
		return ErrClosed
	}
	return err
}
