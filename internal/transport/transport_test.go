package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"enclaves/internal/wire"
)

func env(t wire.Type, sender, payload string) wire.Envelope {
	return wire.Envelope{Type: t, Sender: sender, Receiver: "peer", Payload: []byte(payload)}
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	if err := a.Send(env(wire.TypeAck, "a", "hello")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "hello" {
		t.Errorf("payload = %q", got.Payload)
	}
	// And the reverse direction.
	if err := b.Send(env(wire.TypeAck, "b", "world")); err != nil {
		t.Fatal(err)
	}
	got, err = a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "world" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestPipePreservesOrder(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	for i := 0; i < 100; i++ {
		if err := a.Send(env(wire.TypeAppData, "a", string(rune('A'+i%26)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if want := string(rune('A' + i%26)); string(got.Payload) != want {
			t.Fatalf("frame %d: got %q want %q", i, got.Payload, want)
		}
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after close: err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if err := a.Send(env(wire.TypeAck, "a", "x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: err = %v, want ErrClosed", err)
	}
}

func TestPipeConcurrentSenders(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Send(env(wire.TypeAppData, "a", "m")); err != nil {
				t.Errorf("send: %v", err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestMemNetworkDialListen(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	l, err := n.Listen("leader")
	if err != nil {
		t.Fatal(err)
	}
	if l.Addr() != "leader" {
		t.Errorf("Addr = %q", l.Addr())
	}

	type result struct {
		c   Conn
		err error
	}
	accepted := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		accepted <- result{c, err}
	}()

	client, err := n.Dial("leader")
	if err != nil {
		t.Fatal(err)
	}
	r := <-accepted
	if r.err != nil {
		t.Fatal(r.err)
	}
	if err := client.Send(env(wire.TypeAck, "c", "ping")); err != nil {
		t.Fatal(err)
	}
	got, err := r.c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "ping" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestMemNetworkDialUnknown(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	if _, err := n.Dial("nobody"); err == nil {
		t.Error("dial to unknown address succeeded")
	}
}

func TestMemNetworkDuplicateListen(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); err == nil {
		t.Error("duplicate listen succeeded")
	}
}

func TestMemNetworkListenerClose(t *testing.T) {
	n := NewMemNetwork()
	defer n.Close()
	l, _ := n.Listen("x")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Accept after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock")
	}
	// Address is released.
	if _, err := n.Listen("x"); err != nil {
		t.Errorf("re-listen after close: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type result struct {
		c   Conn
		err error
	}
	accepted := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		accepted <- result{c, err}
	}()

	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	r := <-accepted
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.c.Close()

	want := env(wire.TypeAuthInitReq, "alice", "payload-bytes")
	if err := client.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := r.c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.Sender != want.Sender || string(got.Payload) != string(want.Payload) {
		t.Errorf("got %v want %v", got, want)
	}

	// Server replies.
	if err := r.c.Send(env(wire.TypeAck, "leader", "ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); err == nil {
		t.Error("Recv on closed TCP conn succeeded")
	}
}
