package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"enclaves/internal/wire"
)

// TestTCPAcceptAfterClose pins the shutdown sentinel: Accept on a closed
// listener returns ErrClosed, whether the Close lands before the Accept call
// or while one is blocked.
func TestTCPAcceptAfterClose(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Accept after Close: err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
	// Accept after Close also returns the sentinel, stably.
	for i := 0; i < 3; i++ {
		if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept #%d after Close: err = %v, want ErrClosed", i, err)
		}
	}
}

// TestTCPCloseUnblocksInflightRecv pins the conn-side shutdown edge: a Recv
// blocked on the socket must unblock when the connection is closed locally,
// and report ErrClosed rather than a raw net error.
func TestTCPCloseUnblocksInflightRecv(t *testing.T) {
	client, server := tcpPair(t)
	defer server.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := client.Recv()
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight Recv after local Close: err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	// Subsequent operations stay on the sentinel.
	if _, err := client.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after Close: err = %v, want ErrClosed", err)
	}
	if err := client.Send(env(wire.TypeAck, "a", "x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close: err = %v, want ErrClosed", err)
	}
}

// TestTCPPeerCloseIsNotErrClosed pins the other side of the contract: a
// connection closed by the *peer* surfaces the underlying io error (EOF), not
// ErrClosed — callers distinguish "I hung up" from "they hung up".
func TestTCPPeerCloseIsNotErrClosed(t *testing.T) {
	client, server := tcpPair(t)
	defer client.Close()
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := client.Recv()
	if err == nil {
		t.Fatal("Recv after peer close succeeded")
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("peer close reported as local ErrClosed: %v", err)
	}
}

// tcpPair returns a connected (client, server) conn pair over loopback.
func tcpPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type result struct {
		c   Conn
		err error
	}
	accepted := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		accepted <- result{c, err}
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := <-accepted
	if r.err != nil {
		client.Close()
		t.Fatal(r.err)
	}
	return client, r.c
}

// BenchmarkTCPSendBatch measures the batched-flush path over a real loopback
// socket at several write-buffer sizes — the EXPERIMENTS.md before/after
// number for the sized-writer satellite (512 B approximates the old
// bufio.NewWriter default behavior of flushing every few frames).
func BenchmarkTCPSendBatch(b *testing.B) {
	for _, bufSize := range []int{512, 4 << 10, DefaultWriteBuf} {
		b.Run(fmt.Sprintf("buf=%d", bufSize), func(b *testing.B) {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				nc, err := l.Accept()
				if err != nil {
					return
				}
				defer nc.Close()
				buf := make([]byte, 64<<10)
				for {
					if _, err := nc.Read(buf); err != nil {
						return
					}
				}
			}()
			nc, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			c := NewNetConnSize(nc, bufSize)
			defer c.Close()

			const batchSize = 64
			e := env(wire.TypeAppData, "alice", "0123456789abcdef0123456789abcdef")
			batch := make([]Outgoing, batchSize)
			for i := range batch {
				batch[i] = Outgoing{Enc: NewEncoded(e)}
			}
			b.SetBytes(int64(batchSize * len(e.Payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.SendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			nc.Close()
			wg.Wait()
		})
	}
}
