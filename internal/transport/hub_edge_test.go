package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"enclaves/internal/wire"
)

// Edge cases of the adversarial Link: adversary operations against a closed
// link, replay sequences that die mid-way, and filter swaps racing live
// traffic. These are the situations checker-driven attack scripts hit when
// an endpoint tears the session down while the adversary is still acting.

func edgeFrame(tag string) wire.Envelope {
	return wire.Envelope{Type: wire.TypeAppData, Sender: "a", Receiver: "b", Payload: []byte(tag)}
}

func TestLinkInjectAfterClose(t *testing.T) {
	l := NewLink()
	if err := l.ASide().Send(edgeFrame("pre")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Inject(AToB, edgeFrame("post")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Inject after Close = %v, want ErrClosed", err)
	}
	if err := l.Inject(BToA, edgeFrame("post")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Inject (B->A) after Close = %v, want ErrClosed", err)
	}
	// Captured history must survive closure: the adversary keeps its
	// transcript even after tearing the link down.
	if got := l.Captured(); len(got) != 1 || string(got[0].Env.Payload) != "pre" {
		t.Fatalf("captured after close = %v", got)
	}
}

func TestLinkReplayAfterClose(t *testing.T) {
	l := NewLink()
	if err := l.ASide().Send(edgeFrame("pre")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Replay(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Replay after Close = %v, want ErrClosed", err)
	}
	// Out-of-range indices still report range errors, not ErrClosed.
	if err := l.Replay(5); err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("Replay(5) = %v, want out-of-range error", err)
	}
}

// TestLinkReplayMatchingStopsOnInjectFailure: when the link dies between
// matched frames, ReplayMatching must report how many frames actually got
// through along with the error, not silently swallow the partial replay.
func TestLinkReplayMatchingStopsOnInjectFailure(t *testing.T) {
	l := NewLink()
	for i := 0; i < 3; i++ {
		if err := l.ASide().Send(edgeFrame(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the originals so queue state is irrelevant to the replays.
	for i := 0; i < 3; i++ {
		if _, err := l.BSide().Recv(); err != nil {
			t.Fatal(err)
		}
	}
	matched := 0
	n, err := l.ReplayMatching(func(c Captured) bool {
		matched++
		if matched == 2 {
			// The endpoint hangs up while the adversary is mid-replay.
			l.Close()
		}
		return true
	})
	if n != 1 {
		t.Fatalf("replayed %d frames, want exactly the 1 delivered before closure", n)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("ReplayMatching error = %v, want ErrClosed", err)
	}
}

// TestLinkSetFilterDuringTransmit: swapping filters while both endpoints
// are sending must be race-free, every frame must be either delivered or
// dropped (none duplicated, none invented), and the capture transcript must
// record all of them.
func TestLinkSetFilterDuringTransmit(t *testing.T) {
	l := NewLink()
	const perSide = 200

	var senders sync.WaitGroup
	send := func(c Conn, tag string) {
		defer senders.Done()
		for i := 0; i < perSide; i++ {
			if err := c.Send(edgeFrame(fmt.Sprintf("%s%d", tag, i))); err != nil {
				t.Errorf("send %s%d: %v", tag, i, err)
				return
			}
		}
	}
	var drains sync.WaitGroup
	drain := func(c Conn, got *[]string) {
		defer drains.Done()
		for {
			e, err := c.Recv()
			if err != nil {
				return
			}
			*got = append(*got, string(e.Payload))
		}
	}
	var aGot, bGot []string
	senders.Add(2)
	go send(l.ASide(), "a")
	go send(l.BSide(), "b")
	drains.Add(2)
	go drain(l.ASide(), &aGot)
	go drain(l.BSide(), &bGot)

	// The adversary flips between drop-all, drop-none, and a selective
	// filter while traffic is in flight.
	filters := []FilterFunc{
		nil,
		func(Direction, wire.Envelope) bool { return false },
		func(d Direction, _ wire.Envelope) bool { return d == AToB },
	}
	for i := 0; i < 500; i++ {
		l.SetFilter(filters[i%len(filters)])
	}
	l.SetFilter(nil)

	// Senders finish, then closing the link unblocks the drains; only after
	// both may the receive slices be read.
	senders.Wait()
	l.Close()
	drains.Wait()

	if got := len(l.Captured()); got != 2*perSide {
		t.Fatalf("captured %d frames, want %d (filters must not affect capture)", got, 2*perSide)
	}
	if len(aGot) > perSide || len(bGot) > perSide {
		t.Fatalf("received more frames than were sent: a=%d b=%d", len(aGot), len(bGot))
	}
}
