// Connection multiplexing for the multi-tenant daemon: many independent
// member sessions — typically in many different groups — share one TCP
// connection, one buffered writer, and one read loop. Each session is a
// *stream* identified by a client-allocated uint32 and bound to a group ID
// at open; the server materializes the stream on its first data frame and
// routes it to that group's leader like any other accepted connection.
//
// Flow control is per-stream and deliberately brutal: every stream has a
// bounded receive queue, and a stream whose consumer falls behind is killed
// (MuxClose both ways) rather than allowed to stall the shared socket. A
// slow group can therefore never head-of-line-block the connection — the
// same "bounded memory beats unbounded hope" policy the group layer applies
// to slow members, applied one layer down.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"enclaves/internal/queue"
	"enclaves/internal/wire"
)

// DefaultRecvWindow bounds each mux stream's receive queue, in frames.
// Deep enough to absorb a rekey burst plus a fanout backlog, shallow enough
// that a stalled stream caps out at a few hundred frames of memory.
const DefaultRecvWindow = 256

// MuxConfig configures one multiplexed connection.
type MuxConfig struct {
	// Accept, set on the server side, is invoked once per new inbound
	// stream from the demux loop. It must not block: hand the Conn to a
	// goroutine-spawning server (Leader.ServeConn) and return.
	Accept func(group string, c Conn)
	// RecvWindow bounds each stream's receive queue in frames
	// (<= 0 selects DefaultRecvWindow). A stream that overflows its window
	// is killed, not waited for.
	RecvWindow int
	// WriteBuf sizes the connection's shared buffered writer
	// (<= 0 selects DefaultWriteBuf).
	WriteBuf int
	// Logf, if non-nil, receives diagnostics (killed streams, decode
	// errors).
	Logf func(format string, args ...any)
}

func (cfg MuxConfig) recvWindow() int {
	if cfg.RecvWindow <= 0 {
		return DefaultRecvWindow
	}
	return cfg.RecvWindow
}

func (cfg MuxConfig) writeBuf() int {
	if cfg.WriteBuf <= 0 {
		return DefaultWriteBuf
	}
	return cfg.WriteBuf
}

func (cfg MuxConfig) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// Mux multiplexes independent streams over one net.Conn. The client side
// opens streams with Open; the server side receives them through
// MuxConfig.Accept. Safe for concurrent use.
type Mux struct {
	cfg MuxConfig
	nc  net.Conn
	r   *bufio.Reader

	// wmu serializes the shared buffered writer; werr is its sticky error
	// (after a write fails the socket is dead and every stream sees it).
	wmu  sync.Mutex
	w    *bufio.Writer
	werr error

	//enclavelint:guardedby Mux.mu
	mu      sync.Mutex
	streams map[uint32]*muxStream
	// dead tombstones stream IDs this side killed unilaterally (flow
	// control, relabeling, local Close): in-flight peer frames for a
	// tombstoned ID are dropped instead of re-materializing the stream.
	// The peer's own MuxClose for the ID — which, by in-order delivery,
	// is the last frame that can ever arrive for it — clears the
	// tombstone, so the set stays bounded for well-behaved peers; a peer
	// that never acknowledges kills is cut off at maxDeadStreams.
	dead   map[uint32]struct{}
	closed bool

	nextID atomic.Uint32
}

// maxDeadStreams caps the tombstone set. Only a peer that keeps streaming
// into killed streams without ever processing the MuxClose replies can grow
// it; past the cap the connection itself is torn down — bounded memory
// beats unbounded hope.
const maxDeadStreams = 1 << 16

// muxStream is one session over a Mux, implementing Conn.
type muxStream struct {
	m     *Mux
	id    uint32
	group string
	recvQ *queue.Queue[wire.Envelope]

	closeOnce sync.Once
}

var _ Conn = (*muxStream)(nil)

// DialMux connects to addr and returns a client-side Mux. The caller opens
// one stream per member session with Open.
func DialMux(addr string, cfg MuxConfig) (*Mux, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial mux %s: %w", addr, err)
	}
	return NewMuxClient(nc, cfg), nil
}

// NewMuxClient wraps an established net.Conn as a client-side Mux and
// starts its demux read loop.
func NewMuxClient(nc net.Conn, cfg MuxConfig) *Mux {
	m := newMux(nc, bufio.NewReader(nc), cfg)
	go m.run()
	return m
}

func newMux(nc net.Conn, r *bufio.Reader, cfg MuxConfig) *Mux {
	setNoDelay(nc)
	return &Mux{
		cfg:     cfg,
		nc:      nc,
		r:       r,
		w:       bufio.NewWriterSize(nc, cfg.writeBuf()),
		streams: make(map[uint32]*muxStream),
		dead:    make(map[uint32]struct{}),
	}
}

// ServeMuxConn serves one inbound daemon connection, accepting both
// framings: it sniffs the first frame's magic byte, and a plain envelope
// means a classic single-session connection (the frame is handed back to
// the session as its first Recv, and Accept gets group "" — the caller's
// default route); a mux frame means a multiplexed connection, and the
// demux loop runs until the socket dies. Blocks for the lifetime of the
// connection either way; callers run it in a per-connection goroutine.
func ServeMuxConn(nc net.Conn, cfg MuxConfig) error {
	setNoDelay(nc)
	br := bufio.NewReader(nc)
	body, err := wire.ReadRawFrame(br)
	if err != nil {
		nc.Close()
		return err
	}
	if !wire.IsMuxBody(body) {
		env, err := wire.Decode(body)
		if err != nil {
			nc.Close()
			return err
		}
		c := &tcpConn{
			conn:    nc,
			w:       bufio.NewWriterSize(nc, cfg.writeBuf()),
			r:       br,
			pending: &env,
		}
		cfg.Accept("", c)
		return nil
	}
	m := newMux(nc, br, cfg)
	if err := m.dispatch(body); err != nil {
		m.Close()
		return err
	}
	return m.run()
}

// Open starts a new stream bound to group. Stream IDs are allocated only on
// the opening side, so concurrent Opens never collide; the peer materializes
// the stream when its first data frame arrives.
func (m *Mux) Open(group string) (Conn, error) {
	if len(group) > wire.MaxNameLen {
		return nil, fmt.Errorf("%w: group ID too long", wire.ErrTooLarge)
	}
	s := &muxStream{
		m:     m,
		id:    m.nextID.Add(1),
		group: group,
		recvQ: queue.NewBounded[wire.Envelope](m.cfg.recvWindow()),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.streams[s.id] = s
	m.mu.Unlock()
	return s, nil
}

// run is the demux read loop: it routes every inbound frame to its stream
// until the socket dies, then tears every stream down.
func (m *Mux) run() error {
	var err error
	for {
		var body []byte
		body, err = wire.ReadRawFrame(m.r)
		if err != nil {
			break
		}
		if err = m.dispatch(body); err != nil {
			break
		}
	}
	m.teardown()
	return err
}

// dispatch routes one raw inbound frame. Only malformed framing is a
// connection-fatal error; per-stream trouble kills the stream and keeps the
// connection (that is the point of the mux).
func (m *Mux) dispatch(body []byte) error {
	if !wire.IsMuxBody(body) {
		return fmt.Errorf("%w: plain frame on mux connection", wire.ErrBadFrame)
	}
	f, err := wire.DecodeMux(body)
	if err != nil {
		return err
	}

	m.mu.Lock()
	s, ok := m.streams[f.Stream]
	if !ok {
		if _, tombstoned := m.dead[f.Stream]; tombstoned {
			// In-flight frames for a stream this side killed unilaterally.
			// The peer's MuxClose is, by in-order delivery, the last frame
			// that can arrive for the ID — it retires the tombstone.
			if f.Flag == wire.MuxClose {
				delete(m.dead, f.Stream)
			}
			m.mu.Unlock()
			return nil
		}
		if f.Flag == wire.MuxClose || m.cfg.Accept == nil || m.closed {
			// Close for an already-gone stream, or data for a stream this
			// client side never opened: stale, drop it.
			m.mu.Unlock()
			return nil
		}
		// Server side: first frame of a new stream materializes it.
		s = &muxStream{
			m:     m,
			id:    f.Stream,
			group: f.Group,
			recvQ: queue.NewBounded[wire.Envelope](m.cfg.recvWindow()),
		}
		m.streams[f.Stream] = s
		m.mu.Unlock()
		m.cfg.Accept(f.Group, s)
	} else {
		m.mu.Unlock()
	}

	if f.Flag == wire.MuxClose {
		// Peer-initiated close: close our half and echo a MuxClose so a
		// peer that killed unilaterally can retire its tombstone. No
		// tombstone on this side — in-order delivery guarantees no more
		// frames for the ID after the peer's close.
		m.closeStream(s, true, false)
		return nil
	}
	if f.Group != s.group {
		// A stream is bound to its group at open; a relabeled frame is
		// either a bug or an attempt to smuggle traffic across tenants.
		// Kill the stream, keep the connection.
		m.cfg.logf("mux: stream %d group %q relabeled %q; killing stream", s.id, s.group, f.Group)
		return m.killStream(s)
	}
	// Payload aliases the frame body, which is freshly allocated per frame
	// by ReadRawFrame, so queueing it is safe.
	if err := s.recvQ.Push(f.Env); err != nil {
		if errors.Is(err, queue.ErrFull) {
			// Per-stream flow control: the stream's consumer is not keeping
			// up. Killing it here — instead of blocking the read loop —
			// is what stops one slow group from head-of-line-blocking
			// every other stream on the connection.
			m.cfg.logf("mux: stream %d (group %q) overflowed recv window; killing stream", s.id, s.group)
			return m.killStream(s)
		}
		return nil
	}
	countRecv(f.Env)
	return nil
}

// killStream unilaterally tears a live stream down: tombstone (so in-flight
// peer frames don't resurrect the ID), notify the peer, close the queue.
// The only error is tombstone-cap exhaustion, which is connection-fatal.
func (m *Mux) killStream(s *muxStream) error {
	m.closeStream(s, true, true)
	m.mu.Lock()
	overflow := len(m.dead) > maxDeadStreams
	m.mu.Unlock()
	if overflow {
		return fmt.Errorf("transport: mux peer ignored %d stream kills", maxDeadStreams)
	}
	return nil
}

// closeStream removes a stream and closes its receive queue. notifyPeer
// sends a best-effort MuxClose; tombstone records the ID as dead until the
// peer's own MuxClose arrives (only meaningful for unilateral kills on the
// accepting side — a client-side ID can't be resurrected because Accept is
// nil there).
func (m *Mux) closeStream(s *muxStream, notifyPeer, tombstone bool) {
	m.mu.Lock()
	if m.streams[s.id] != s {
		m.mu.Unlock()
		return
	}
	delete(m.streams, s.id)
	if tombstone && m.cfg.Accept != nil {
		m.dead[s.id] = struct{}{}
	}
	m.mu.Unlock()
	s.recvQ.Close()
	if notifyPeer {
		m.writeFrame(func(w *bufio.Writer) error {
			return wire.WriteMuxFrame(w, s.group, s.id, wire.MuxClose, wire.Envelope{})
		})
	}
}

// teardown closes every stream after the read loop exits.
func (m *Mux) teardown() {
	m.mu.Lock()
	streams := m.streams
	m.streams = make(map[uint32]*muxStream)
	m.closed = true
	m.mu.Unlock()
	for _, s := range streams {
		s.recvQ.Close()
	}
}

// Close tears down the connection and every stream on it.
func (m *Mux) Close() error {
	err := m.nc.Close()
	m.teardown()
	return err
}

// writeFrame runs one write-and-flush under the shared writer lock,
// normalizing errors and keeping the first failure sticky: once the socket
// is dead every stream's sends fail fast instead of buffering into a void.
func (m *Mux) writeFrame(write func(w *bufio.Writer) error) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	if m.werr != nil {
		return m.werr
	}
	err := write(m.w)
	if err == nil {
		err = m.w.Flush()
	}
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			err = ErrClosed
		}
		m.werr = err
	}
	return err
}

func (s *muxStream) Send(e wire.Envelope) error {
	err := s.m.writeFrame(func(w *bufio.Writer) error {
		return wire.WriteMuxFrame(w, s.group, s.id, wire.MuxData, e)
	})
	if err != nil {
		return err
	}
	countSend(e)
	return nil
}

// SendEncoded splices the stream's own mux prefix in front of the shared
// envelope bytes, so a fan-out to N streams pays one envelope encode
// (Encoded.Frame) and N small headers.
func (s *muxStream) SendEncoded(enc *Encoded) error {
	frame, err := enc.Frame()
	if err != nil {
		return err
	}
	err = s.m.writeFrame(func(w *bufio.Writer) error {
		return s.spliceLocked(w, frame)
	})
	if err != nil {
		return err
	}
	countSend(enc.env)
	return nil
}

func (s *muxStream) SendBatch(batch []Outgoing) error {
	err := s.m.writeFrame(func(w *bufio.Writer) error {
		for _, o := range batch {
			if o.Enc != nil {
				frame, err := o.Enc.Frame()
				if err != nil {
					return err
				}
				if err := s.spliceLocked(w, frame); err != nil {
					return err
				}
			} else if err := wire.WriteMuxFrame(w, s.group, s.id, wire.MuxData, o.Env); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, o := range batch {
		countSend(o.Envelope())
	}
	return nil
}

// spliceLocked writes one data frame for this stream reusing a shared
// pre-encoded plain frame (length prefix + envelope bytes). Caller holds
// the writer lock via writeFrame.
func (s *muxStream) spliceLocked(w *bufio.Writer, plainFrame []byte) error {
	envBytes := plainFrame[4:] // strip the plain frame's length prefix
	var prefix [64]byte
	if _, err := w.Write(wire.AppendMuxPrefix(prefix[:0], s.group, s.id, len(envBytes))); err != nil {
		return err
	}
	_, err := w.Write(envBytes)
	return err
}

func (s *muxStream) Recv() (wire.Envelope, error) {
	return translateErr(s.recvQ.Pop())
}

// Close tears down this stream only: the peer is told (best-effort
// MuxClose), the receive queue closes, and the shared connection keeps
// serving every other stream.
func (s *muxStream) Close() error {
	s.closeOnce.Do(func() { s.m.closeStream(s, true, true) })
	return nil
}
