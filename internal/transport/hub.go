package transport

import (
	"fmt"
	"sync"

	"enclaves/internal/wire"
)

// Direction identifies the flow of a frame through an adversarial link.
type Direction uint8

// Frame directions on a Link.
const (
	// AToB flows from the A-side endpoint to the B-side endpoint.
	AToB Direction = iota + 1
	// BToA flows from the B-side endpoint to the A-side endpoint.
	BToA
)

func (d Direction) String() string {
	switch d {
	case AToB:
		return "A->B"
	case BToA:
		return "B->A"
	default:
		return "?"
	}
}

// Captured is one frame observed by the adversary.
type Captured struct {
	Dir Direction
	Env wire.Envelope
}

// FilterFunc inspects an in-flight frame; returning false drops it.
type FilterFunc func(Direction, wire.Envelope) bool

// Link is a bidirectional connection fully controlled by a Dolev-Yao
// adversary: every frame is recorded, frames can be dropped by a filter,
// and the adversary can inject arbitrary frames or replay recorded ones in
// either direction. This realizes the network assumptions of Section 3.1.
type Link struct {
	mu       sync.Mutex
	captured []Captured
	filter   FilterFunc

	aSide Conn // handed to the A endpoint
	bSide Conn

	aIn *envQueue // frames awaiting Recv by the A endpoint
	bIn *envQueue
}

// NewLink returns an adversarial link. ASide and BSide are the two
// endpoints' connections; everything between them crosses the adversary.
func NewLink() *Link {
	l := &Link{
		aIn: newQueue(),
		bIn: newQueue(),
	}
	l.aSide = &linkConn{link: l, dir: AToB, in: l.aIn}
	l.bSide = &linkConn{link: l, dir: BToA, in: l.bIn}
	return l
}

// ASide returns the connection used by the A-side endpoint.
func (l *Link) ASide() Conn { return l.aSide }

// BSide returns the connection used by the B-side endpoint.
func (l *Link) BSide() Conn { return l.bSide }

// SetFilter installs a drop rule applied to subsequent frames. A nil filter
// delivers everything.
func (l *Link) SetFilter(f FilterFunc) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.filter = f
}

// Captured returns a copy of every frame observed so far, in order.
func (l *Link) Captured() []Captured {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Captured(nil), l.captured...)
}

// Inject delivers an adversary-crafted frame in the given direction, as if
// it had been sent by the corresponding endpoint.
func (l *Link) Inject(dir Direction, e wire.Envelope) error {
	return translatePushErr(l.destination(dir).Push(e))
}

// Replay re-delivers the i-th captured frame to its original destination.
func (l *Link) Replay(i int) error {
	l.mu.Lock()
	if i < 0 || i >= len(l.captured) {
		l.mu.Unlock()
		return fmt.Errorf("transport: replay index %d out of range", i)
	}
	c := l.captured[i]
	l.mu.Unlock()
	return l.Inject(c.Dir, c.Env)
}

// ReplayMatching re-delivers every captured frame satisfying pred, in
// capture order, and returns how many were replayed.
func (l *Link) ReplayMatching(pred func(Captured) bool) (int, error) {
	replayed := 0
	for _, c := range l.Captured() {
		if !pred(c) {
			continue
		}
		if err := l.Inject(c.Dir, c.Env); err != nil {
			return replayed, err
		}
		replayed++
	}
	return replayed, nil
}

// Close tears down both sides.
func (l *Link) Close() {
	l.aIn.Close()
	l.bIn.Close()
}

// transmit is called by an endpoint's Send: record, filter, deliver.
func (l *Link) transmit(dir Direction, e wire.Envelope) error {
	l.mu.Lock()
	l.captured = append(l.captured, Captured{Dir: dir, Env: e})
	filter := l.filter
	l.mu.Unlock()
	if filter != nil && !filter(dir, e) {
		return nil // dropped by the adversary; sender cannot tell
	}
	return translatePushErr(l.destination(dir).Push(e))
}

func (l *Link) destination(dir Direction) *envQueue {
	if dir == AToB {
		return l.bIn
	}
	return l.aIn
}

// linkConn is one endpoint of an adversarial link.
type linkConn struct {
	link *Link
	dir  Direction // direction of frames SENT by this endpoint
	in   *envQueue

	closeOnce sync.Once
}

var _ Conn = (*linkConn)(nil)

func (c *linkConn) Send(e wire.Envelope) error {
	return c.link.transmit(c.dir, e)
}

// SendEncoded delivers the envelope form: the adversary observes and
// manipulates envelopes, so the shared frame bytes are irrelevant here.
func (c *linkConn) SendEncoded(enc *Encoded) error { return c.Send(enc.Env()) }

func (c *linkConn) SendBatch(batch []Outgoing) error { return SendEach(c, batch) }

func (c *linkConn) Recv() (wire.Envelope, error) {
	return translateErr(c.in.Pop())
}

func (c *linkConn) Close() error {
	c.closeOnce.Do(func() { c.link.Close() })
	return nil
}
