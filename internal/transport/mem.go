package transport

import (
	"fmt"
	"sync"
)

// MemNetwork is an in-memory network: named listeners and dialers connected
// by Pipe links. It is the default substrate for tests, examples and
// benchmarks.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	closed    bool
}

// NewMemNetwork returns an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

// Listen registers a listener at addr.
func (n *MemNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, taken := n.listeners[addr]; taken {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &memListener{
		net:     n,
		addr:    addr,
		backlog: make(chan Conn, 1),
		done:    make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener at addr.
func (n *MemNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	client, server := Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		client.Close()
		return nil, ErrClosed
	}
}

// Close shuts down the network and all its listeners.
func (n *MemNetwork) Close() {
	n.mu.Lock()
	listeners := make([]*memListener, 0, len(n.listeners))
	for _, l := range n.listeners {
		listeners = append(listeners, l)
	}
	n.closed = true
	n.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
}

type memListener struct {
	net     *MemNetwork
	addr    string
	backlog chan Conn

	closeOnce sync.Once
	done      chan struct{}
}

var _ Listener = (*memListener)(nil)

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Addr() string { return l.addr }

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}
