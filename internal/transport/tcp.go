package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"enclaves/internal/wire"
)

// DefaultWriteBuf sizes the buffered writer wrapped around network
// connections. The batched-flush path (Conn.SendBatch, PR 3) collapses a
// drained outbox into one flush; a buffer large enough to hold a whole
// drained backlog turns that flush into a single write syscall instead of
// several. 32 KiB holds ~hundreds of admin frames or a handful of full-MTU
// application frames without approaching the per-connection memory budget of
// a many-thousand-connection daemon.
const DefaultWriteBuf = 32 << 10

// tcpConn adapts a net.Conn to the framed Conn interface.
type tcpConn struct {
	conn   net.Conn
	closed atomic.Bool

	sendMu sync.Mutex
	w      *bufio.Writer

	recvMu sync.Mutex
	r      *bufio.Reader
	// pending is an already-decoded envelope handed back by a server that
	// sniffed the connection's first frame to pick a framing (see
	// ServeMuxConn); the first Recv returns it.
	pending *wire.Envelope
}

var _ Conn = (*tcpConn)(nil)

// NewNetConn wraps an established net.Conn (TCP, Unix socket, net.Pipe) as
// a framed transport connection with the default write buffer. TCP
// connections get TCP_NODELAY set explicitly: the transport does its own
// write coalescing (buffered writer + batched flush), so Nagle's algorithm
// could only add latency on top, never save a syscall.
func NewNetConn(c net.Conn) Conn {
	return NewNetConnSize(c, DefaultWriteBuf)
}

// NewNetConnSize is NewNetConn with an explicit write-buffer size in bytes
// (<= 0 selects DefaultWriteBuf).
func NewNetConnSize(c net.Conn, writeBuf int) Conn {
	if writeBuf <= 0 {
		writeBuf = DefaultWriteBuf
	}
	setNoDelay(c)
	return &tcpConn{
		conn: c,
		w:    bufio.NewWriterSize(c, writeBuf),
		r:    bufio.NewReader(c),
	}
}

// setNoDelay disables Nagle's algorithm on TCP connections. Go's net package
// does this by default, but the transport's write-coalescing contract depends
// on it (a flush must hit the wire now, not after a delayed-ack timer), so it
// is set explicitly rather than inherited from a default that could change.
func setNoDelay(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
}

// DialTCP connects to a framed TCP endpoint.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewNetConn(c), nil
}

func (c *tcpConn) Send(e wire.Envelope) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := wire.WriteFrame(c.w, e); err != nil {
		return c.sendErr(err)
	}
	if err := c.w.Flush(); err != nil {
		return c.sendErr(err)
	}
	countSend(e)
	return nil
}

// SendEncoded writes the shared pre-encoded frame verbatim: when a relay
// fans one envelope out to N TCP members, the encoding happened once in
// Encoded.Frame and each connection only pays the write.
func (c *tcpConn) SendEncoded(enc *Encoded) error {
	frame, err := enc.Frame()
	if err != nil {
		return err
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if _, err := c.w.Write(frame); err != nil {
		return c.sendErr(err)
	}
	if err := c.w.Flush(); err != nil {
		return c.sendErr(err)
	}
	countSend(enc.Env())
	return nil
}

// SendBatch writes every frame into the buffered writer and flushes once,
// collapsing a drained outbox into a single syscall (modulo buffer size).
func (c *tcpConn) SendBatch(batch []Outgoing) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	for _, o := range batch {
		if o.Enc != nil {
			frame, err := o.Enc.Frame()
			if err != nil {
				return err
			}
			if _, err := c.w.Write(frame); err != nil {
				return c.sendErr(err)
			}
		} else if err := wire.WriteFrame(c.w, o.Env); err != nil {
			return c.sendErr(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		return c.sendErr(err)
	}
	for _, o := range batch {
		countSend(o.Envelope())
	}
	return nil
}

func (c *tcpConn) Recv() (wire.Envelope, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if c.pending != nil {
		e := *c.pending
		c.pending = nil
		countRecv(e)
		return e, nil
	}
	e, err := wire.ReadFrame(c.r)
	if err != nil {
		return wire.Envelope{}, c.recvErr(err)
	}
	countRecv(e)
	return e, nil
}

func (c *tcpConn) Close() error {
	c.closed.Store(true)
	return c.conn.Close()
}

// sendErr and recvErr map the raw net errors of a locally closed connection
// onto the transport's stable ErrClosed sentinel: after Close, pending and
// future operations fail with an error callers can errors.Is against,
// matching the in-memory transports. A peer's close stays io.EOF and a
// network failure stays what it was — only the local-shutdown edge is
// normalized.
func (c *tcpConn) sendErr(err error) error {
	if c.closed.Load() || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

func (c *tcpConn) recvErr(err error) error {
	if c.closed.Load() || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

// tcpListener adapts a net.Listener.
type tcpListener struct {
	l      net.Listener
	closed atomic.Bool
}

var _ Listener = (*tcpListener)(nil)

// ListenTCP starts a framed TCP listener on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Accept blocks until a connection arrives. After Close — including a Close
// that lands while Accept is blocked — it returns ErrClosed, the same stable
// sentinel every transport uses, rather than a raw net error string.
func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		if t.closed.Load() || errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return NewNetConn(c), nil
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

func (t *tcpListener) Close() error {
	t.closed.Store(true)
	return t.l.Close()
}
