package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"enclaves/internal/wire"
)

// tcpConn adapts a net.Conn to the framed Conn interface.
type tcpConn struct {
	conn net.Conn

	sendMu sync.Mutex
	w      *bufio.Writer

	recvMu sync.Mutex
	r      *bufio.Reader
}

var _ Conn = (*tcpConn)(nil)

// NewNetConn wraps an established net.Conn (TCP, Unix socket, net.Pipe) as
// a framed transport connection.
func NewNetConn(c net.Conn) Conn {
	return &tcpConn{
		conn: c,
		w:    bufio.NewWriter(c),
		r:    bufio.NewReader(c),
	}
}

// DialTCP connects to a framed TCP endpoint.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewNetConn(c), nil
}

func (c *tcpConn) Send(e wire.Envelope) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := wire.WriteFrame(c.w, e); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	countSend(e)
	return nil
}

// SendEncoded writes the shared pre-encoded frame verbatim: when a relay
// fans one envelope out to N TCP members, the encoding happened once in
// Encoded.Frame and each connection only pays the write.
func (c *tcpConn) SendEncoded(enc *Encoded) error {
	frame, err := enc.Frame()
	if err != nil {
		return err
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if _, err := c.w.Write(frame); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	countSend(enc.Env())
	return nil
}

// SendBatch writes every frame into the buffered writer and flushes once,
// collapsing a drained outbox into a single syscall (modulo buffer size).
func (c *tcpConn) SendBatch(batch []Outgoing) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	for _, o := range batch {
		if o.Enc != nil {
			frame, err := o.Enc.Frame()
			if err != nil {
				return err
			}
			if _, err := c.w.Write(frame); err != nil {
				return err
			}
		} else if err := wire.WriteFrame(c.w, o.Env); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for _, o := range batch {
		countSend(o.Envelope())
	}
	return nil
}

func (c *tcpConn) Recv() (wire.Envelope, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	e, err := wire.ReadFrame(c.r)
	if err == nil {
		countRecv(e)
	}
	return e, err
}

func (c *tcpConn) Close() error {
	return c.conn.Close()
}

// tcpListener adapts a net.Listener.
type tcpListener struct {
	l net.Listener
}

var _ Listener = (*tcpListener)(nil)

// ListenTCP starts a framed TCP listener on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewNetConn(c), nil
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

func (t *tcpListener) Close() error { return t.l.Close() }
