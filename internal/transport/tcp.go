package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"enclaves/internal/wire"
)

// tcpConn adapts a net.Conn to the framed Conn interface.
type tcpConn struct {
	conn net.Conn

	sendMu sync.Mutex
	w      *bufio.Writer

	recvMu sync.Mutex
	r      *bufio.Reader
}

var _ Conn = (*tcpConn)(nil)

// NewNetConn wraps an established net.Conn (TCP, Unix socket, net.Pipe) as
// a framed transport connection.
func NewNetConn(c net.Conn) Conn {
	return &tcpConn{
		conn: c,
		w:    bufio.NewWriter(c),
		r:    bufio.NewReader(c),
	}
}

// DialTCP connects to a framed TCP endpoint.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewNetConn(c), nil
}

func (c *tcpConn) Send(e wire.Envelope) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := wire.WriteFrame(c.w, e); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	countSend(e)
	return nil
}

func (c *tcpConn) Recv() (wire.Envelope, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	e, err := wire.ReadFrame(c.r)
	if err == nil {
		countRecv(e)
	}
	return e, err
}

func (c *tcpConn) Close() error {
	return c.conn.Close()
}

// tcpListener adapts a net.Listener.
type tcpListener struct {
	l net.Listener
}

var _ Listener = (*tcpListener)(nil)

// ListenTCP starts a framed TCP listener on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewNetConn(c), nil
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

func (t *tcpListener) Close() error { return t.l.Close() }
