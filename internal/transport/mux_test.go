package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"enclaves/internal/wire"
)

// muxTestServer runs ServeMuxConn on every connection of a loopback
// listener, delivering accepted streams to a channel.
type acceptedStream struct {
	group string
	conn  Conn
}

func startMuxServer(t *testing.T, cfg MuxConfig) (addr string, accepted chan acceptedStream) {
	t.Helper()
	accepted = make(chan acceptedStream, 64)
	cfg.Accept = func(group string, c Conn) {
		accepted <- acceptedStream{group, c}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			go ServeMuxConn(nc, cfg)
		}
	}()
	return l.Addr().String(), accepted
}

// TestMuxRoundTrip drives several streams in different groups over one
// socket and checks both directions plus isolation of delivery.
func TestMuxRoundTrip(t *testing.T) {
	addr, accepted := startMuxServer(t, MuxConfig{})
	m, err := DialMux(addr, MuxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const streams = 5
	client := make([]Conn, streams)
	server := make([]acceptedStream, streams)
	for i := range client {
		group := fmt.Sprintf("g%d", i)
		c, err := m.Open(group)
		if err != nil {
			t.Fatal(err)
		}
		client[i] = c
		if err := c.Send(env(wire.TypeAuthInitReq, "alice", fmt.Sprintf("hello-%d", i))); err != nil {
			t.Fatal(err)
		}
		select {
		case s := <-accepted:
			if s.group != group {
				t.Fatalf("stream %d accepted with group %q, want %q", i, s.group, group)
			}
			server[i] = s
		case <-time.After(2 * time.Second):
			t.Fatalf("stream %d not accepted", i)
		}
	}
	for i, s := range server {
		e, err := s.conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("hello-%d", i); string(e.Payload) != want {
			t.Fatalf("stream %d got %q want %q", i, e.Payload, want)
		}
		if err := s.conn.Send(env(wire.TypeAck, "leader", fmt.Sprintf("ack-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range client {
		e, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("ack-%d", i); string(e.Payload) != want {
			t.Fatalf("client stream %d got %q want %q", i, e.Payload, want)
		}
	}
}

// TestMuxSniffPlainConn pins backward compatibility: a classic single-frame
// client on the same listener is accepted with group "" and its first frame
// is not lost.
func TestMuxSniffPlainConn(t *testing.T) {
	addr, accepted := startMuxServer(t, MuxConfig{})
	c, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first := env(wire.TypeAuthInitReq, "alice", "plain-first-frame")
	if err := c.Send(first); err != nil {
		t.Fatal(err)
	}
	var s acceptedStream
	select {
	case s = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("plain conn not accepted")
	}
	if s.group != "" {
		t.Fatalf("plain conn accepted with group %q, want \"\"", s.group)
	}
	got, err := s.conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "plain-first-frame" {
		t.Fatalf("sniffed first frame lost: got %q", got.Payload)
	}
	// Round trip keeps working after the sniffed frame.
	if err := c.Send(env(wire.TypeAppData, "alice", "second")); err != nil {
		t.Fatal(err)
	}
	if got, err = s.conn.Recv(); err != nil || string(got.Payload) != "second" {
		t.Fatalf("second frame: %v %q", err, got.Payload)
	}
	if err := s.conn.Send(env(wire.TypeAck, "leader", "ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
}

// TestMuxSlowStreamKilled pins the per-group flow control: a stream whose
// consumer never drains overflows its bounded window and is killed — while
// a sibling stream on the same socket keeps flowing, i.e. no head-of-line
// blocking.
func TestMuxSlowStreamKilled(t *testing.T) {
	const window = 8
	addr, accepted := startMuxServer(t, MuxConfig{RecvWindow: window})
	m, err := DialMux(addr, MuxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	slow, err := m.Open("slow")
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.Open("fast")
	if err != nil {
		t.Fatal(err)
	}
	// Flood the slow stream far past its window; the server never drains it.
	for i := 0; i < window*4; i++ {
		if err := slow.Send(env(wire.TypeAppData, "alice", "flood")); err != nil {
			t.Fatal(err)
		}
	}
	var slowSrv, fastSrv acceptedStream
	for slowSrv.conn == nil || fastSrv.conn == nil {
		if err := fast.Send(env(wire.TypeAppData, "bob", "ping")); err != nil {
			t.Fatal(err)
		}
		select {
		case s := <-accepted:
			switch s.group {
			case "slow":
				slowSrv = s
			case "fast":
				fastSrv = s
			}
		case <-time.After(2 * time.Second):
			t.Fatal("streams not accepted")
		}
	}
	// The fast stream still round-trips even though its sibling is wedged.
	if err := fastSrv.conn.Send(env(wire.TypeAck, "leader", "pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := fast.Recv(); err != nil {
		t.Fatalf("fast stream blocked by slow sibling: %v", err)
	}
	// The slow stream's server half was closed by flow control: after the
	// buffered frames drain, Recv reports closure.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := slowSrv.conn.Recv()
		if err != nil {
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("killed stream Recv: err = %v, want ErrClosed", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("overflowed stream was never killed")
		}
	}
	// And the client half learns about it via the peer's MuxClose.
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, err := slow.Recv()
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client half of killed stream never closed")
		}
	}
}

// TestMuxStreamCloseIsLocal pins stream teardown: closing one stream closes
// both halves of it and nothing else.
func TestMuxStreamCloseIsLocal(t *testing.T) {
	addr, accepted := startMuxServer(t, MuxConfig{})
	m, err := DialMux(addr, MuxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	a, err := m.Open("ga")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Open("gb")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Conn{a, b} {
		if err := c.Send(env(wire.TypeAuthInitReq, "alice", "hi")); err != nil {
			t.Fatal(err)
		}
	}
	srv := map[string]Conn{}
	for len(srv) < 2 {
		select {
		case s := <-accepted:
			srv[s.group] = s.conn
		case <-time.After(2 * time.Second):
			t.Fatal("streams not accepted")
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed stream Recv: err = %v, want ErrClosed", err)
	}
	// Server half of a: drains the pending frame, then closes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := srv["ga"].Recv()
		if err != nil {
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("peer of closed stream: err = %v, want ErrClosed", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server half of closed stream never closed")
		}
	}
	// Sibling stream is untouched.
	if err := srv["gb"].Send(env(wire.TypeAck, "leader", "still here")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatalf("sibling stream broken by Close: %v", err)
	}
}

// TestMuxEncodedFanout pins the encode-once splice path over mux: the same
// *Encoded delivered via SendEncoded and SendBatch on several streams
// arrives intact on each.
func TestMuxEncodedFanout(t *testing.T) {
	addr, accepted := startMuxServer(t, MuxConfig{})
	m, err := DialMux(addr, MuxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	enc := NewEncoded(env(wire.TypeAppData, "leader", "shared-fanout-bytes"))
	const n = 4
	conns := make([]Conn, n)
	for i := range conns {
		c, err := m.Open(fmt.Sprintf("g%d", i))
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		if err := c.SendEncoded(enc); err != nil {
			t.Fatal(err)
		}
		if err := c.SendBatch([]Outgoing{{Enc: enc}, {Env: env(wire.TypeAck, "leader", "tail")}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		var s acceptedStream
		select {
		case s = <-accepted:
		case <-time.After(2 * time.Second):
			t.Fatal("stream not accepted")
		}
		for _, want := range []string{"shared-fanout-bytes", "shared-fanout-bytes", "tail"} {
			e, err := s.conn.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if string(e.Payload) != want {
				t.Fatalf("stream %s got %q want %q", s.group, e.Payload, want)
			}
		}
	}
}

// TestMuxConnCloseTearsDownStreams pins connection-level teardown: closing
// the Mux closes every stream on both sides.
func TestMuxConnCloseTearsDownStreams(t *testing.T) {
	addr, accepted := startMuxServer(t, MuxConfig{})
	m, err := DialMux(addr, MuxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Open("g0")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(env(wire.TypeAuthInitReq, "alice", "hi")); err != nil {
		t.Fatal(err)
	}
	var s acceptedStream
	select {
	case s = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("stream not accepted")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("stream Recv after Mux.Close: err = %v, want ErrClosed", err)
	}
	if err := c.Send(env(wire.TypeAppData, "alice", "x")); err == nil {
		t.Fatal("Send after Mux.Close succeeded")
	}
	// Server side unblocks too once it drains the pending frame.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.conn.Recv(); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server stream never closed after client Mux.Close")
		}
	}
	if _, err := m.Open("g1"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Open after Close: err = %v, want ErrClosed", err)
	}
}

// TestMuxConcurrentStreams hammers one socket from many goroutines — run
// under -race this is the data-race check for the shared writer and stream
// table.
func TestMuxConcurrentStreams(t *testing.T) {
	addr, accepted := startMuxServer(t, MuxConfig{})
	// Echo every accepted stream until it closes.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for s := range accepted {
			wg.Add(1)
			go func(c Conn) {
				defer wg.Done()
				for {
					e, err := c.Recv()
					if err != nil {
						return
					}
					if err := c.Send(e); err != nil {
						return
					}
				}
			}(s.conn)
		}
		wg.Wait()
	}()

	m, err := DialMux(addr, MuxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const streams, msgs = 16, 50
	var wg sync.WaitGroup
	errCh := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := m.Open(fmt.Sprintf("g%d", i%4))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for j := 0; j < msgs; j++ {
				want := fmt.Sprintf("s%d-m%d", i, j)
				if err := c.Send(env(wire.TypeAppData, "alice", want)); err != nil {
					errCh <- fmt.Errorf("stream %d send: %w", i, err)
					return
				}
				e, err := c.Recv()
				if err != nil {
					errCh <- fmt.Errorf("stream %d recv: %w", i, err)
					return
				}
				if string(e.Payload) != want {
					errCh <- fmt.Errorf("stream %d got %q want %q", i, e.Payload, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	m.Close()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	close(accepted)
	<-done
}
