package member

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"enclaves/internal/faultnet"
	"enclaves/internal/transport"
)

// TestSilenceTimeoutClosesMember: a leader that completes the join and then
// never sends again (no heartbeats configured) trips the member's silence
// watchdog, which closes the session with ErrLeaderSilent — distinguishable
// from a voluntary leave and from a transport failure.
func TestSilenceTimeoutClosesMember(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()
	startLeader(t, net, "primary", []string{"alice"}) // no Liveness: silent after join

	conn, err := net.Dial("primary")
	if err != nil {
		t.Fatal(err)
	}
	m, err := JoinOpts(conn, "alice", "primary", endpoint(net, "primary", "alice").LongTerm,
		Options{SilenceTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("no EventClosed before deadline")
		default:
		}
		ev, ok := m.TryNext()
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if ev.Kind != EventClosed {
			continue
		}
		if !errors.Is(ev.Err, ErrLeaderSilent) {
			t.Fatalf("EventClosed.Err = %v, want ErrLeaderSilent", ev.Err)
		}
		return
	}
}

// TestSessionSilenceFailsOverToStandby: the leader stays connected but stops
// talking (here: a faultnet partition blackholes the link after the join).
// No transport error ever fires — only the silence watchdog can notice — and
// the Session must fail over to the standby endpoint on its own.
func TestSessionSilenceFailsOverToStandby(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()
	startLeader(t, net, "primary", []string{"alice"})
	standby := startLeader(t, net, "standby", []string{"alice"})

	var dials int32
	primary := endpoint(net, "primary", "alice")
	primary.Dial = func() (transport.Conn, error) {
		if atomic.AddInt32(&dials, 1) > 1 {
			// After the wedge the primary is treated as gone, so the
			// rejoin round falls through to the standby.
			return nil, errors.New("primary unreachable")
		}
		raw, err := net.Dial("primary")
		if err != nil {
			return nil, err
		}
		// The join completes cleanly, then the partition opens and never
		// closes: a wedged-but-connected leader.
		return faultnet.Wrap(raw, faultnet.Plan{
			Seed:       1,
			Partitions: []faultnet.Partition{{Start: 150 * time.Millisecond, Stop: time.Hour}},
		}), nil
	}

	s, err := NewSession(SessionConfig{
		User:           "alice",
		Endpoints:      []Endpoint{primary, endpoint(net, "standby", "alice")},
		Backoff:        10 * time.Millisecond,
		SilenceTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	go func() {
		for {
			if _, err := s.Next(); err != nil {
				return
			}
		}
	}()

	waitSession(t, "failover to the standby leader", func() bool {
		ms := standby.Members()
		return len(ms) == 1 && ms[0] == "alice"
	})
	waitSession(t, "session back up", s.Up)
}

// TestSessionCloseDuringBackoffReturnsPromptly: Close must interrupt the
// rejoin backoff wait instead of sleeping it out (the wait can reach 32x the
// base backoff).
func TestSessionCloseDuringBackoffReturnsPromptly(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()
	g := startLeader(t, net, "primary", []string{"alice"})

	s, err := NewSession(SessionConfig{
		User:      "alice",
		Endpoints: []Endpoint{endpoint(net, "primary", "alice")},
		Backoff:   2 * time.Second, // long enough that sleeping it out fails the test
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := s.Next(); err != nil {
				return
			}
		}
	}()

	// Kill the leader so supervise enters the backoff loop.
	g.Close()
	waitSession(t, "session down", func() bool { return !s.Up() })
	time.Sleep(50 * time.Millisecond) // let supervise reach the backoff wait

	start := time.Now()
	s.Close()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close took %v, want prompt return from backoff wait", elapsed)
	}
}
