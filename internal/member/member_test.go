package member

import (
	"errors"
	"testing"
	"time"

	"enclaves/internal/core"
	"enclaves/internal/crypto"
	"enclaves/internal/transport"
	"enclaves/internal/wire"
)

const (
	userName   = "alice"
	leaderName = "leader"
)

// fakeLeader drives the leader side of a single session by hand, so member
// behaviour can be tested against exact frame sequences.
type fakeLeader struct {
	t      *testing.T
	conn   transport.Conn
	engine *core.LeaderSession
}

func startFakeLeader(t *testing.T) (*fakeLeader, transport.Conn, crypto.Key) {
	t.Helper()
	longTerm := crypto.DeriveKey(userName, leaderName, "pw")
	engine, err := core.NewLeaderSession(leaderName, userName, longTerm)
	if err != nil {
		t.Fatal(err)
	}
	memberSide, leaderSide := transport.Pipe()
	return &fakeLeader{t: t, conn: leaderSide, engine: engine}, memberSide, longTerm
}

// pump processes exactly n protocol frames from the member.
func (f *fakeLeader) pump(n int) {
	f.t.Helper()
	for i := 0; i < n; i++ {
		env, err := f.conn.Recv()
		if err != nil {
			f.t.Fatalf("fake leader recv: %v", err)
		}
		ev, err := f.engine.Handle(env)
		if err != nil {
			f.t.Fatalf("fake leader handle %s: %v", env.Type, err)
		}
		if ev.Reply != nil {
			if err := f.conn.Send(*ev.Reply); err != nil {
				f.t.Fatalf("fake leader send: %v", err)
			}
		}
	}
}

// sendAdmin pushes an admin body through the engine and transmits it.
func (f *fakeLeader) sendAdmin(body wire.AdminBody) {
	f.t.Helper()
	env, err := f.engine.Send(body)
	if err != nil {
		f.t.Fatal(err)
	}
	if env == nil {
		f.t.Fatal("pipeline busy in sendAdmin")
	}
	if err := f.conn.Send(*env); err != nil {
		f.t.Fatal(err)
	}
}

// joinThrough completes the handshake concurrently with member.Join.
func joinThrough(t *testing.T) (*fakeLeader, *Member) {
	t.Helper()
	f, memberSide, longTerm := startFakeLeader(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.pump(2) // AuthInitReq, AuthAckKey
	}()
	m, err := Join(memberSide, userName, leaderName, longTerm)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	t.Cleanup(func() { m.conn.Close() })
	return f, m
}

func nextEvent(t *testing.T, m *Member) Event {
	t.Helper()
	type res struct {
		ev  Event
		err error
	}
	ch := make(chan res, 1)
	go func() {
		ev, err := m.Next()
		ch <- res{ev, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("Next: %v", r.err)
		}
		return r.ev
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for event")
		return Event{}
	}
}

func TestJoinHandshake(t *testing.T) {
	_, m := joinThrough(t)
	if m.Name() != userName || m.Leader() != leaderName {
		t.Errorf("identities: %s/%s", m.Name(), m.Leader())
	}
	if got := m.Members(); len(got) != 1 || got[0] != userName {
		t.Errorf("initial view = %v", got)
	}
	if m.Epoch() != 0 {
		t.Errorf("epoch before first key = %d", m.Epoch())
	}
}

func TestJoinToleratesJunkDuringHandshake(t *testing.T) {
	f, memberSide, longTerm := startFakeLeader(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		env, err := f.conn.Recv() // AuthInitReq
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		// Junk before the genuine reply: must be rejected, not fatal.
		f.conn.Send(wire.Envelope{Type: wire.TypeAuthKeyDist, Sender: leaderName, Receiver: userName, Payload: []byte("garbage")})
		f.conn.Send(wire.Envelope{Type: wire.TypeConnDenied, Sender: leaderName, Receiver: userName})
		ev, err := f.engine.Handle(env)
		if err != nil {
			t.Errorf("handle: %v", err)
			return
		}
		f.conn.Send(*ev.Reply)
		f.pump(1) // AuthAckKey
	}()
	m, err := Join(memberSide, userName, leaderName, longTerm)
	if err != nil {
		t.Fatalf("join failed despite genuine reply: %v", err)
	}
	<-done
	m.conn.Close()
}

func TestAdminEventsUpdateView(t *testing.T) {
	f, m := joinThrough(t)

	key, _ := crypto.NewKey()
	f.sendAdmin(wire.NewGroupKey{Epoch: 1, Key: key})
	f.pump(1) // ack
	ev := nextEvent(t, m)
	if ev.Kind != EventRekey || ev.Epoch != 1 {
		t.Fatalf("event = %v", ev)
	}
	if m.Epoch() != 1 {
		t.Errorf("epoch = %d", m.Epoch())
	}

	f.sendAdmin(wire.MemberJoined{Name: "bob"})
	f.pump(1)
	ev = nextEvent(t, m)
	if ev.Kind != EventJoined || ev.Name != "bob" {
		t.Fatalf("event = %v", ev)
	}
	if got := m.Members(); len(got) != 2 {
		t.Errorf("view = %v", got)
	}

	f.sendAdmin(wire.MemberList{Names: []string{"alice", "bob", "carol"}})
	f.pump(1)
	nextEvent(t, m)
	if got := m.Members(); len(got) != 3 {
		t.Errorf("view after list = %v", got)
	}

	f.sendAdmin(wire.MemberLeft{Name: "bob"})
	f.pump(1)
	ev = nextEvent(t, m)
	if ev.Kind != EventLeft || ev.Name != "bob" {
		t.Fatalf("event = %v", ev)
	}
	if got := m.Members(); len(got) != 2 {
		t.Errorf("view after left = %v", got)
	}
}

func TestSendDataRequiresGroupKey(t *testing.T) {
	_, m := joinThrough(t)
	if err := m.SendData([]byte("x")); !errors.Is(err, ErrNoGroupKey) {
		t.Errorf("err = %v, want ErrNoGroupKey", err)
	}
}

func TestSendAndReceiveData(t *testing.T) {
	f, m := joinThrough(t)
	key, _ := crypto.NewKey()
	f.sendAdmin(wire.NewGroupKey{Epoch: 1, Key: key})
	f.pump(1)
	nextEvent(t, m) // rekey

	if err := m.SendData([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	env, err := f.conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != wire.TypeAppData {
		t.Fatalf("leader got %s", env.Type)
	}
	// Simulate relay of another member's data: seal under the same key.
	out := wire.Envelope{Type: wire.TypeAppData, Sender: "bob", Receiver: leaderName}
	p := wire.AppDataPayload{Sender: "bob", Epoch: 1, Data: []byte("hi alice")}
	box, err := crypto.Seal(key, p.Marshal(), out.Header())
	if err != nil {
		t.Fatal(err)
	}
	out.Payload = box
	if err := f.conn.Send(out); err != nil {
		t.Fatal(err)
	}
	ev := nextEvent(t, m)
	if ev.Kind != EventData || string(ev.Data) != "hi alice" || ev.From != "bob" {
		t.Fatalf("event = %v", ev)
	}
}

func TestOneEpochGraceAcceptsInFlightData(t *testing.T) {
	f, m := joinThrough(t)
	oldKey, _ := crypto.NewKey()
	f.sendAdmin(wire.NewGroupKey{Epoch: 1, Key: oldKey})
	f.pump(1)
	nextEvent(t, m)
	newKey, _ := crypto.NewKey()
	f.sendAdmin(wire.NewGroupKey{Epoch: 2, Key: newKey})
	f.pump(1)
	nextEvent(t, m)

	// Data sealed under the immediately superseded key (epoch 1) was in
	// flight across the rekey: the one-epoch grace key delivers it.
	out := wire.Envelope{Type: wire.TypeAppData, Sender: "bob", Receiver: leaderName}
	p := wire.AppDataPayload{Sender: "bob", Epoch: 1, Data: []byte("in flight")}
	box, _ := crypto.Seal(oldKey, p.Marshal(), out.Header())
	out.Payload = box
	if err := f.conn.Send(out); err != nil {
		t.Fatal(err)
	}
	ev := nextEvent(t, m)
	if ev.Kind != EventData || string(ev.Data) != "in flight" || ev.Epoch != 1 {
		t.Fatalf("event = %v", ev)
	}
}

func TestStaleEpochDataRejected(t *testing.T) {
	f, m := joinThrough(t)
	staleKey, _ := crypto.NewKey()
	f.sendAdmin(wire.NewGroupKey{Epoch: 1, Key: staleKey})
	f.pump(1)
	nextEvent(t, m)
	for e := uint64(2); e <= 3; e++ {
		k, _ := crypto.NewKey()
		f.sendAdmin(wire.NewGroupKey{Epoch: e, Key: k})
		f.pump(1)
		nextEvent(t, m)
	}

	// Epoch-1 data is now TWO rekeys old: beyond the grace window, it must
	// be rejected (the forward-secrecy boundary).
	out := wire.Envelope{Type: wire.TypeAppData, Sender: "bob", Receiver: leaderName}
	p := wire.AppDataPayload{Sender: "bob", Epoch: 1, Data: []byte("stale")}
	box, _ := crypto.Seal(staleKey, p.Marshal(), out.Header())
	out.Payload = box
	before := m.Rejected()
	if err := f.conn.Send(out); err != nil {
		t.Fatal(err)
	}
	waitRejected(t, m, before)

	// Epoch-tag/key mismatch within the grace window is also rejected:
	// data sealed under the previous key must claim the previous epoch.
	m2key, _ := crypto.NewKey()
	_ = m2key
	prevForged := wire.Envelope{Type: wire.TypeAppData, Sender: "bob", Receiver: leaderName}
	p2 := wire.AppDataPayload{Sender: "bob", Epoch: 3, Data: []byte("lying epoch")}
	// Sealed under epoch-2's key but claiming epoch 3: grab epoch-2's key
	// is not available here, so reuse staleKey to prove the generic
	// mismatch path rejects.
	box2, _ := crypto.Seal(staleKey, p2.Marshal(), prevForged.Header())
	prevForged.Payload = box2
	before = m.Rejected()
	if err := f.conn.Send(prevForged); err != nil {
		t.Fatal(err)
	}
	waitRejected(t, m, before)
}

func TestForgedAdminCounted(t *testing.T) {
	f, m := joinThrough(t)
	evil, _ := crypto.NewKey()
	env := wire.Envelope{Type: wire.TypeAdminMsg, Sender: leaderName, Receiver: userName}
	p := wire.AdminMsgPayload{Leader: leaderName, User: userName, Seq: 1, Body: wire.MemberLeft{Name: "bob"}}
	box, _ := crypto.Seal(evil, p.Marshal(), env.Header())
	env.Payload = box
	before := m.Rejected()
	if err := f.conn.Send(env); err != nil {
		t.Fatal(err)
	}
	waitRejected(t, m, before)
	// The view is untouched.
	if got := m.Members(); len(got) != 1 {
		t.Errorf("view changed by forged admin: %v", got)
	}
}

func TestUnexpectedFrameCounted(t *testing.T) {
	f, m := joinThrough(t)
	before := m.Rejected()
	if err := f.conn.Send(wire.Envelope{Type: wire.TypeConnDenied, Sender: "x"}); err != nil {
		t.Fatal(err)
	}
	waitRejected(t, m, before)
}

func waitRejected(t *testing.T, m *Member, before uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Rejected() > before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("rejected counter did not advance")
}

func TestLeave(t *testing.T) {
	f, m := joinThrough(t)
	recvDone := make(chan wire.Envelope, 1)
	go func() {
		env, err := f.conn.Recv()
		if err == nil {
			recvDone <- env
		}
		close(recvDone)
	}()
	if err := m.Leave(); err != nil {
		t.Fatal(err)
	}
	env, ok := <-recvDone
	if !ok || env.Type != wire.TypeReqClose {
		t.Fatalf("leader got %v (ok=%v)", env, ok)
	}
	if err := m.Leave(); !errors.Is(err, ErrLeft) {
		t.Errorf("double leave: %v", err)
	}
	if err := m.SendData([]byte("x")); !errors.Is(err, ErrLeft) {
		t.Errorf("send after leave: %v", err)
	}
	// Event stream ends with a clean close.
	for {
		ev, err := m.Next()
		if err != nil {
			break
		}
		if ev.Kind == EventClosed && ev.Err != nil {
			t.Errorf("voluntary leave reported error: %v", ev.Err)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EventJoined: "Joined", EventLeft: "Left", EventRekey: "Rekey",
		EventData: "Data", EventClosed: "Closed",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	ev := Event{Kind: EventData, From: "x", Data: []byte("ab")}
	if ev.String() == "" {
		t.Error("empty event string")
	}
}

func TestWaitReady(t *testing.T) {
	f, m := joinThrough(t)

	// Not ready before the first group key.
	if err := m.WaitReady(20 * time.Millisecond); !errors.Is(err, ErrNoGroupKey) {
		t.Errorf("premature WaitReady: %v", err)
	}

	key, _ := crypto.NewKey()
	done := make(chan error, 1)
	go func() { done <- m.WaitReady(5 * time.Second) }()
	f.sendAdmin(wire.NewGroupKey{Epoch: 1, Key: key})
	f.pump(1)
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("WaitReady after key: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitReady never returned")
	}
}

func TestWaitReadyAfterLeave(t *testing.T) {
	_, m := joinThrough(t)
	recvStarted := make(chan struct{})
	go func() {
		close(recvStarted)
		_ = m.Leave()
	}()
	<-recvStarted
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := m.WaitReady(10 * time.Millisecond); errors.Is(err, ErrLeft) {
			return
		}
	}
	t.Fatal("WaitReady never reported ErrLeft after leave")
}
