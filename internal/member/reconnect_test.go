package member

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"enclaves/internal/crypto"
	"enclaves/internal/group"
	"enclaves/internal/transport"
)

// startLeader brings up a group leader on the in-memory network.
func startLeader(t *testing.T, net *transport.MemNetwork, name string, users []string) *group.Leader {
	t.Helper()
	keys := make(map[string]crypto.Key, len(users))
	for _, u := range users {
		keys[u] = crypto.DeriveKey(u, name, u+"-pw")
	}
	g, err := group.NewLeader(group.Config{Name: name, Users: keys, Rekey: group.DefaultRekeyPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	go g.Serve(l)
	t.Cleanup(func() {
		g.Close()
		l.Close()
	})
	return g
}

func endpoint(net *transport.MemNetwork, leader, user string) Endpoint {
	return Endpoint{
		Leader:   leader,
		LongTerm: crypto.DeriveKey(user, leader, user+"-pw"),
		Dial:     func() (transport.Conn, error) { return net.Dial(leader) },
	}
}

func waitSession(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestSessionJoinsAndSends(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()
	g := startLeader(t, net, "primary", []string{"alice", "bob"})

	s, err := NewSession(SessionConfig{
		User:      "alice",
		Endpoints: []Endpoint{endpoint(net, "primary", "alice")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if !s.Up() {
		t.Fatal("session not up after NewSession")
	}
	waitSession(t, "leader sees alice", func() bool { return len(g.Members()) == 1 })
	if err := s.SendData([]byte("hi")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if s.Epoch() == 0 {
		t.Error("session has no epoch despite WaitReady")
	}
}

func TestSessionFailsOverToStandby(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()

	// A dedicated listener handle for the primary so we can crash it.
	primaryKeys := map[string]crypto.Key{"alice": crypto.DeriveKey("alice", "primary", "alice-pw")}
	primary, err := group.NewLeader(group.Config{Name: "primary", Users: primaryKeys, Rekey: group.DefaultRekeyPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := net.Listen("primary")
	if err != nil {
		t.Fatal(err)
	}
	go primary.Serve(pl)

	standby := startLeader(t, net, "standby", []string{"alice"})

	s, err := NewSession(SessionConfig{
		User: "alice",
		Endpoints: []Endpoint{
			endpoint(net, "primary", "alice"),
			endpoint(net, "standby", "alice"),
		},
		Backoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitSession(t, "joined primary", func() bool { return len(primary.Members()) == 1 })

	// Crash the primary: the session must rejoin via the standby.
	pl.Close()
	primary.Close()
	waitSession(t, "failed over to standby", func() bool { return len(standby.Members()) == 1 })
	waitSession(t, "session back up", func() bool { return s.Up() && s.Epoch() > 0 })

	if err := s.SendData([]byte("post failover")); err != nil {
		t.Fatalf("send after failover: %v", err)
	}

	// The unified event stream saw two of our own joins.
	joins := 0
	deadline := time.Now().Add(5 * time.Second)
	for joins < 2 && time.Now().Before(deadline) {
		ev, ok := s.TryNext()
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if ev.Kind == EventJoined && ev.Name == "alice" {
			joins++
		}
	}
	if joins < 2 {
		t.Errorf("saw %d self-joins, want 2", joins)
	}
}

func TestSessionGivesUpAfterMaxRounds(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()
	primaryKeys := map[string]crypto.Key{"alice": crypto.DeriveKey("alice", "primary", "alice-pw")}
	primary, err := group.NewLeader(group.Config{Name: "primary", Users: primaryKeys, Rekey: group.DefaultRekeyPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := net.Listen("primary")
	if err != nil {
		t.Fatal(err)
	}
	go primary.Serve(pl)

	s, err := NewSession(SessionConfig{
		User:      "alice",
		Endpoints: []Endpoint{endpoint(net, "primary", "alice")},
		Backoff:   time.Millisecond,
		MaxRounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Crash the only endpoint for good.
	pl.Close()
	primary.Close()

	deadline := time.After(10 * time.Second)
	for {
		var ev Event
		var ok bool
		select {
		case <-deadline:
			t.Fatal("session never gave up")
		default:
			ev, ok = s.TryNext()
		}
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if ev.Kind == EventClosed {
			if !errors.Is(ev.Err, ErrGaveUp) {
				t.Errorf("closed with %v, want ErrGaveUp", ev.Err)
			}
			break
		}
	}
	if s.Up() {
		t.Error("session still up after giving up")
	}
	if err := s.SendData([]byte("x")); !errors.Is(err, ErrDown) {
		t.Errorf("send while down: %v", err)
	}
}

func TestSessionVoluntaryClose(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()
	g := startLeader(t, net, "primary", []string{"alice"})

	s, err := NewSession(SessionConfig{
		User:      "alice",
		Endpoints: []Endpoint{endpoint(net, "primary", "alice")},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitSession(t, "joined", func() bool { return len(g.Members()) == 1 })
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitSession(t, "left at leader", func() bool { return len(g.Members()) == 0 })

	// No rejoin happens after a voluntary close.
	time.Sleep(20 * time.Millisecond)
	if len(g.Members()) != 0 {
		t.Error("session rejoined after voluntary close")
	}
	if err := s.Close(); !errors.Is(err, ErrLeft) {
		t.Errorf("double close: %v", err)
	}
}

func TestSessionConfigValidation(t *testing.T) {
	if _, err := NewSession(SessionConfig{User: "", Endpoints: []Endpoint{{}}}); err == nil {
		t.Error("empty user accepted")
	}
	if _, err := NewSession(SessionConfig{User: "alice"}); err == nil {
		t.Error("no endpoints accepted")
	}
	// Unreachable endpoint fails the initial join.
	net := transport.NewMemNetwork()
	defer net.Close()
	_, err := NewSession(SessionConfig{
		User:      "alice",
		Endpoints: []Endpoint{endpoint(net, "nowhere", "alice")},
	})
	if err == nil {
		t.Error("unreachable endpoint accepted")
	}
}

// TestCloseDuringRejoinRace: a Close that lands while a rejoin attempt is
// in flight finds no current member to Leave — the attempt must then
// dismantle whatever it joined instead of installing it into the closed
// session, or pump blocks on a member nobody will ever close and Close
// hangs on the supervisor (found as a teardown hang in BenchmarkFailover
// at 1024 members). The redial is gated so the window is held open
// deterministically.
func TestCloseDuringRejoinRace(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close()
	g := startLeader(t, net, "primary", []string{"alice"})

	var calls atomic.Int32
	dialing := make(chan struct{})
	gate := make(chan struct{})
	var firstConn transport.Conn
	ep := endpoint(net, "primary", "alice")
	base := ep.Dial
	ep.Dial = func() (transport.Conn, error) {
		if calls.Add(1) == 1 {
			c, err := base()
			firstConn = c
			return c, err
		}
		dialing <- struct{}{}
		<-gate
		return base()
	}

	s, err := NewSession(SessionConfig{
		User:      "alice",
		Endpoints: []Endpoint{ep},
		Backoff:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Involuntary loss: kill the live conn out from under the member, then
	// hold the resulting rejoin attempt open at its dial.
	firstConn.Close()
	<-dialing

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	waitSession(t, "close marks the session", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.closed
	})
	close(gate) // the in-flight rejoin now completes against the live leader

	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung: in-flight rejoin was installed into a closed session")
	}
	waitSession(t, "leader drains the raced join", func() bool { return len(g.Members()) == 0 })
}
