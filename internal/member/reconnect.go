package member

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"enclaves/internal/core"
	"enclaves/internal/crypto"
	"enclaves/internal/queue"
	"enclaves/internal/transport"
)

// This file implements automatic re-join: the library form of the
// failover pattern (examples/failover) and the paper's future-work
// direction of surviving leader loss. A Session owns a sequence of Member
// sessions: whenever the current one dies involuntarily, it re-runs the
// authenticated join against the configured endpoints (primary first, then
// standbys) with exponential backoff. Because the protocol authenticates
// from long-term keys alone and generates all session state fresh, rejoin
// needs no recovery handshake beyond the verified three-message join.

// Endpoint describes one leader the session may (re)join.
type Endpoint struct {
	// Leader is the leader's identity at this endpoint.
	Leader string
	// LongTerm is the key shared with THIS leader (keys are per leader:
	// crypto.DeriveKey binds the leader name).
	LongTerm crypto.Key
	// Dial opens a fresh connection to the endpoint.
	Dial func() (transport.Conn, error)
}

// SessionConfig configures an auto-rejoining session.
type SessionConfig struct {
	// User is this member's identity.
	User string
	// Endpoints are tried in order on every (re)join round.
	Endpoints []Endpoint
	// Backoff is the base delay before the first rejoin attempt; it doubles
	// per failed round, capped at 32x, and every wait is jittered uniformly
	// over [backoff/2, backoff) from a PRNG seeded by the user name — after
	// a leader failure, thousands of members desynchronize their reconnect
	// attempts deterministically instead of stampeding the promoted standby
	// in lockstep. Zero means 50ms.
	Backoff time.Duration
	// MaxRounds bounds rejoin rounds (a round tries every endpoint once);
	// zero means unlimited.
	MaxRounds int
	// ReadyTimeout bounds the wait for the first group key after each
	// join; zero means 10s.
	ReadyTimeout time.Duration
	// SilenceTimeout arms each underlying session's leader-silence
	// watchdog (Options.SilenceTimeout): a wedged or partitioned leader is
	// detected without waiting for a transport error, and the session
	// fails over to the next endpoint automatically. Zero disables it.
	SilenceTimeout time.Duration
}

// ErrDown is returned by Session.SendData while no leader is joined.
var ErrDown = errors.New("member: session down, rejoining")

// ErrGaveUp is carried by the final EventClosed after MaxRounds failed
// rejoin rounds.
var ErrGaveUp = errors.New("member: gave up rejoining")

// Session is an auto-rejoining group membership. Events from successive
// underlying sessions are delivered on one unified stream; an EventJoined
// for the member itself marks each successful (re)join.
type Session struct {
	cfg SessionConfig

	mu      sync.Mutex
	current *Member // nil while down
	closed  bool

	events  *queue.Queue[Event]
	done    chan struct{}
	closing chan struct{} // closed by Close; cancels backoff waits
}

// NewSession joins through the first reachable endpoint and starts the
// supervision loop. It fails if the initial round reaches no endpoint.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.User == "" {
		return nil, errors.New("member: session user must be non-empty")
	}
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("member: session needs at least one endpoint")
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 10 * time.Second
	}
	s := &Session{
		cfg:     cfg,
		events:  queue.New[Event](),
		done:    make(chan struct{}),
		closing: make(chan struct{}),
	}
	m, err := s.joinOnce()
	if err != nil {
		return nil, err
	}
	s.current = m
	go s.supervise(m)
	return s, nil
}

// joinOnce tries every endpoint once and returns the first success.
func (s *Session) joinOnce() (*Member, error) {
	var lastErr error
	for _, ep := range s.cfg.Endpoints {
		conn, err := ep.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		m, err := JoinOpts(conn, s.cfg.User, ep.Leader, ep.LongTerm, Options{SilenceTimeout: s.cfg.SilenceTimeout})
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		if err := m.WaitReady(s.cfg.ReadyTimeout); err != nil {
			m.Leave()
			lastErr = err
			continue
		}
		return m, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no endpoints")
	}
	return nil, fmt.Errorf("member: all endpoints failed: %w", lastErr)
}

// supervise pumps the current member's events and rejoins on involuntary
// loss. A session lost to leader silence (failover) first tries the
// resumption sub-protocol — re-attaching to the promoted standby under the
// existing session key, no password re-handshake — and only falls back to
// the full join when resumption is refused or unreachable.
func (s *Session) supervise(m *Member) {
	defer close(s.done)
	rng := newJitterRNG(s.cfg.User)
	s.events.Push(Event{Kind: EventJoined, Name: s.cfg.User})
	for {
		failure := s.pump(m)
		s.mu.Lock()
		s.current = nil
		closed := s.closed
		s.mu.Unlock()
		if closed || failure == nil {
			// Voluntary close.
			s.events.Push(Event{Kind: EventClosed})
			s.events.Close()
			return
		}
		// Silence means the leader is gone (wedged, partitioned, dead) — the
		// failover case resumption exists for. An ordinary connection loss to
		// a healthy leader re-joins directly; a live primary has no resumable
		// entry and would refuse anyway.
		var resumeSt core.SessionState
		var canResume bool
		if errors.Is(failure, ErrLeaderSilent) {
			resumeSt, canResume = m.ResumeState()
		}

		// Rejoin rounds with jittered exponential backoff. The wait is
		// cancellable: Close must not block behind a sleep that can reach 32x
		// the base backoff.
		backoff := s.cfg.Backoff
		round := 0
		for {
			round++
			if s.cfg.MaxRounds > 0 && round > s.cfg.MaxRounds {
				s.events.Push(Event{Kind: EventClosed, Err: ErrGaveUp})
				s.events.Close()
				return
			}
			wait := time.NewTimer(rng.jittered(backoff))
			select {
			case <-wait.C:
			case <-s.closing:
				wait.Stop()
			}
			if backoff < 32*s.cfg.Backoff {
				backoff *= 2
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.events.Push(Event{Kind: EventClosed})
				s.events.Close()
				return
			}
			var next *Member
			if canResume {
				mResumeAttempts.Inc()
				if r, err := s.resumeOnce(resumeSt); err == nil {
					next = r
				} else {
					mResumeFallback.Inc()
				}
			}
			if next == nil {
				mRejoins.Inc()
				joined, err := s.joinOnce()
				if err != nil {
					continue
				}
				next = joined
				canResume = false // fresh session; the old state is obsolete
			}
			s.mu.Lock()
			if s.closed {
				// Close ran while the join/resume was in flight: it found no
				// current member to Leave, so this one is ours to dismantle —
				// installing it would leave pump blocked on a session nobody
				// ever closes.
				s.mu.Unlock()
				next.Leave()
				s.events.Push(Event{Kind: EventClosed})
				s.events.Close()
				return
			}
			s.current = next
			s.mu.Unlock()
			m = next
			s.events.Push(Event{Kind: EventJoined, Name: s.cfg.User})
			break
		}
	}
}

// resumeOnce tries the resumption sub-protocol against every endpoint
// carrying the failed session's leader identity: the promoted standby
// assumes the primary's name (the members' long-term keys bind it), so only
// its address differs.
func (s *Session) resumeOnce(st core.SessionState) (*Member, error) {
	var lastErr error
	for _, ep := range s.cfg.Endpoints {
		if ep.Leader != st.Leader {
			continue
		}
		conn, err := ep.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		m, err := Resume(conn, st, ep.LongTerm, Options{SilenceTimeout: s.cfg.SilenceTimeout})
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		return m, nil
	}
	if lastErr == nil {
		lastErr = errors.New("member: no endpoint matches the resumable leader")
	}
	return nil, lastErr
}

// jitterRNG is a tiny deterministic PRNG (splitmix64) seeded from the
// member's name: distinct members draw distinct jitter streams, one member's
// schedule reproduces run to run, and neither math/rand (banned in protocol
// packages) nor the clock is involved.
type jitterRNG uint64

func newJitterRNG(user string) *jitterRNG {
	// FNV-1a spreads the name over the seed space.
	h := uint64(14695981039346656037)
	for i := 0; i < len(user); i++ {
		h ^= uint64(user[i])
		h *= 1099511628211
	}
	r := jitterRNG(h)
	return &r
}

func (r *jitterRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9e9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// jittered spreads a delay uniformly over [d/2, d).
func (r *jitterRNG) jittered(d time.Duration) time.Duration {
	half := uint64(d) / 2
	if half == 0 {
		return d
	}
	return time.Duration(half + r.next()%half)
}

// pump forwards m's events until it closes; it returns the closure error
// (nil for a voluntary leave).
func (s *Session) pump(m *Member) error {
	for {
		ev, err := m.Next()
		if err != nil {
			return nil // drained after voluntary leave
		}
		if ev.Kind == EventClosed {
			return ev.Err
		}
		s.events.Push(ev)
	}
}

// Next blocks for the next event of the unified stream.
func (s *Session) Next() (Event, error) {
	ev, err := s.events.Pop()
	if err != nil {
		return Event{Kind: EventClosed}, ErrLeft
	}
	return ev, nil
}

// TryNext returns the next event without blocking.
func (s *Session) TryNext() (Event, bool) {
	return s.events.TryPop()
}

// SendData multicasts through the current session; while down it returns
// ErrDown so the application can buffer or drop.
func (s *Session) SendData(data []byte) error {
	s.mu.Lock()
	m := s.current
	s.mu.Unlock()
	if m == nil {
		return ErrDown
	}
	return m.SendData(data)
}

// Members returns the current view, or nil while down.
func (s *Session) Members() []string {
	s.mu.Lock()
	m := s.current
	s.mu.Unlock()
	if m == nil {
		return nil
	}
	return m.Members()
}

// Epoch returns the current group-key epoch, or zero while down.
func (s *Session) Epoch() uint64 {
	s.mu.Lock()
	m := s.current
	s.mu.Unlock()
	if m == nil {
		return 0
	}
	return m.Epoch()
}

// Up reports whether a leader is currently joined.
func (s *Session) Up() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current != nil
}

// Close leaves the group (if joined) and stops the supervision loop,
// interrupting any in-progress rejoin backoff.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrLeft
	}
	s.closed = true
	close(s.closing)
	m := s.current
	s.mu.Unlock()

	var err error
	if m != nil {
		err = m.Leave()
	}
	<-s.done
	return err
}
