package member

// Member-side logical-key-hierarchy state (see internal/lkh and
// internal/group/lkh.go for the leader half). An LKH member holds a bag of
// node keys — its leaf-to-root path — keyed by node ID. The bag needs no
// tree structure: a KeyUpdate is applicable iff it is sealed under a key in
// the bag, and applying it just stores the rotated node's new key. Updates
// are version-gated (last writer wins per node), so duplicated or reordered
// frames are harmless; the update flagged Root also installs the new group
// key, with the same one-epoch grace as a flat NewGroupKey.
//
// KeyUpdate delivery is fire-and-forget. When an update does not fit the
// bag — sealed under a key we never held, or its AEAD fails because an
// earlier rotation was lost — the member asks for a full path resync with
// KeySyncReq, rate-limited to one request per observed target epoch
// (mirroring the leader's one-answer-per-epoch limit). The PathKeys reply
// arrives on the reliable admin pipeline and resets the bag wholesale.

import (
	"enclaves/internal/crypto"
	"enclaves/internal/wire"
)

// pathEntry is one held node key with the version that wrote it.
type pathEntry struct {
	ver uint64
	key crypto.Key
}

// handleKeyUpdate applies one subtree key rotation. The AEAD open runs
// outside m.mu (lock discipline: no crypto under the state lock), so the
// version gate is re-checked before the store.
func (m *Member) handleKeyUpdate(env wire.Envelope) {
	p, err := wire.UnmarshalKeyUpdate(env.Payload)
	if err != nil {
		m.reject()
		return
	}
	m.mu.Lock()
	if m.left || m.pathKeys == nil {
		// Not an LKH member (no PathKeys ever arrived): junk to tolerate.
		m.mu.Unlock()
		m.reject()
		return
	}
	if cur, ok := m.pathKeys[p.Node]; ok && cur.ver >= p.Ver {
		m.mu.Unlock()
		return // duplicate or superseded rotation; last writer already won
	}
	under, held := m.pathKeys[p.Under]
	m.mu.Unlock()
	if !held {
		// Sealed under a key we do not hold. Either the update is not for
		// our subtree (the leader's targeting failed across a race) or our
		// path is stale; a resync resolves both.
		m.requestKeySync(p.Epoch)
		return
	}
	c, err := crypto.NewCipher(under.key)
	if err != nil {
		m.reject()
		return
	}
	plain, err := c.Open(p.Box, p.AD())
	if err != nil {
		// We hold a key for that node but the wrong generation: a prior
		// rotation never reached us. Repair the whole path.
		m.reject()
		m.requestKeySync(p.Epoch)
		return
	}
	key, err := crypto.KeyFromBytes(plain)
	if err != nil {
		m.reject()
		return
	}

	m.mu.Lock()
	if m.left {
		m.mu.Unlock()
		return
	}
	if cur, ok := m.pathKeys[p.Node]; ok && cur.ver >= p.Ver {
		m.mu.Unlock()
		return // lost the race against a newer rotation or a resync
	}
	m.pathKeys[p.Node] = pathEntry{ver: p.Ver, key: key}
	var out Event
	if p.Root && (p.Epoch > m.epoch || !m.groupKey.Valid()) {
		m.installGroupKeyLocked(key, p.Epoch)
		out = Event{Kind: EventRekey, Epoch: p.Epoch}
	}
	m.mu.Unlock()
	mKeyUpdates.Inc()
	if out.Kind != 0 {
		m.events.Push(out)
		mEvents.Inc()
	}
}

// applyPathKeysLocked resets the key bag to a complete leaf-to-root path
// delivered over the admin pipeline (join, resync, or post-rotation
// top-up). Entries the member already holds at a NEWER version survive the
// reset: a KeyUpdate that raced ahead of the PathKeys must not be rolled
// back. Returns the rekey event to emit, if the path advanced the group
// key. Caller holds m.mu.
func (m *Member) applyPathKeysLocked(body wire.PathKeys) Event {
	fresh := make(map[uint64]pathEntry, len(body.Entries))
	for _, e := range body.Entries {
		if cur, ok := m.pathKeys[e.Node]; ok && cur.ver > e.Ver {
			fresh[e.Node] = cur
			continue
		}
		fresh[e.Node] = pathEntry{ver: e.Ver, key: e.Key}
	}
	m.pathKeys = fresh
	gk, ok := body.GroupKey()
	if !ok || body.Epoch < m.epoch {
		return Event{}
	}
	if m.groupKey.Valid() && body.Epoch == m.epoch && gk.Equal(m.groupKey) {
		return Event{} // resync confirmed the key we already hold
	}
	m.installGroupKeyLocked(gk, body.Epoch)
	return Event{Kind: EventRekey, Epoch: body.Epoch}
}

// installGroupKeyLocked rotates the member's group key, retaining the
// superseded key for the one-epoch decryption grace and precomputing the
// AEAD once per rekey. Caller holds m.mu.
func (m *Member) installGroupKeyLocked(key crypto.Key, epoch uint64) {
	if m.groupKey.Valid() {
		m.prevKey = m.groupKey
		m.prevEpoch = m.epoch
		m.prevCipher = m.groupCipher
	}
	m.groupKey = key
	m.epoch = epoch
	// A bad key from a confused leader leaves the cipher nil and SendData
	// reports ErrNoGroupKey.
	m.groupCipher, _ = crypto.NewCipher(key)
}

// requestKeySync asks the leader for a full path resync, at most once per
// observed target epoch — a burst of unopenable updates from one missed
// rotation costs one round trip, not one per frame.
func (m *Member) requestKeySync(target uint64) {
	m.mu.Lock()
	if m.left || m.syncEpoch >= target {
		m.mu.Unlock()
		return
	}
	m.syncEpoch = target
	epoch := m.epoch
	m.mu.Unlock()
	mKeySyncReqs.Inc()
	m.send(wire.Envelope{
		Type:     wire.TypeKeySyncReq,
		Sender:   m.name,
		Receiver: m.leader,
		Payload:  wire.KeySyncPayload{Epoch: epoch}.Marshal(),
	})
}
