// Package member implements the user side of an Enclaves application
// (Figure 1): it joins a group through the improved authentication protocol
// (via core.MemberSession), maintains the member's view of the group —
// membership and current group key — from the verified stream of
// group-management messages, and sends and receives application multicast
// encrypted under the group key.
//
// Because the AdminMsg pipeline is proven to deliver group-management
// messages in order, without duplication, and only from the leader
// (Section 5.4), the view maintained here is exactly the leader's history:
// a compromised member or outsider cannot make this member believe a key or
// membership change the leader did not issue.
package member

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"enclaves/internal/core"
	"enclaves/internal/crypto"
	"enclaves/internal/queue"
	"enclaves/internal/transport"
	"enclaves/internal/wire"
)

// EventKind classifies events delivered to the application.
type EventKind uint8

// Event kinds.
const (
	// EventJoined: a member joined the group.
	EventJoined EventKind = iota + 1
	// EventLeft: a member left or was expelled.
	EventLeft
	// EventRekey: the leader distributed a new group key.
	EventRekey
	// EventData: application data from another member.
	EventData
	// EventClosed: the session ended; Err carries the cause (nil after a
	// voluntary Leave).
	EventClosed
)

func (k EventKind) String() string {
	switch k {
	case EventJoined:
		return "Joined"
	case EventLeft:
		return "Left"
	case EventRekey:
		return "Rekey"
	case EventData:
		return "Data"
	case EventClosed:
		return "Closed"
	default:
		return "invalid"
	}
}

// Event is one notification to the application.
type Event struct {
	Kind  EventKind
	Name  string // member name for Joined/Left
	Epoch uint64 // group-key epoch for Rekey and Data
	From  string // sender for Data
	Data  []byte // payload for Data
	Err   error  // cause for Closed
	// Seq, for events driven by a group-management message, is the
	// AdminMsg's leader-assigned pipeline sequence number — the trace ID
	// that correlates this member-side event with the leader's audit log
	// for the same broadcast. Zero for non-admin events (Data, Closed).
	Seq uint64
}

func (e Event) String() string {
	switch e.Kind {
	case EventJoined:
		return "Joined(" + e.Name + ")"
	case EventLeft:
		return "Left(" + e.Name + ")"
	case EventRekey:
		return fmt.Sprintf("Rekey(epoch=%d)", e.Epoch)
	case EventData:
		return fmt.Sprintf("Data(from=%s, %dB)", e.From, len(e.Data))
	case EventClosed:
		return fmt.Sprintf("Closed(err=%v)", e.Err)
	default:
		return "Event(?)"
	}
}

// ErrNoGroupKey is returned by SendData before the first group key arrives.
var ErrNoGroupKey = errors.New("member: no group key yet")

// ErrLeft is returned by operations after Leave.
var ErrLeft = errors.New("member: session left")

// ErrLeaderSilent is the EventClosed cause when the leader sent nothing for
// longer than Options.SilenceTimeout. It is distinguishable from an
// ordinary connection loss so supervisors (member.Session) know the leader
// is unresponsive — wedged, partitioned, or dead — and should fail over.
var ErrLeaderSilent = errors.New("member: leader silent beyond timeout")

// Options tunes a member session beyond the required identity parameters.
type Options struct {
	// SilenceTimeout closes the session with ErrLeaderSilent when no frame
	// arrives from the leader for this long. Pair it with leader-side
	// heartbeats (group.Liveness.HeartbeatInterval) comfortably shorter
	// than this timeout, or an idle but healthy leader looks dead. Zero
	// disables the watchdog.
	SilenceTimeout time.Duration
}

// Member is a connected group member.
type Member struct {
	name   string
	leader string
	conn   transport.Conn
	engine *core.MemberSession

	silence  time.Duration
	lastRecv atomic.Int64 // UnixNano of the most recent received frame
	silenced atomic.Bool  // the watchdog closed the connection

	mu       sync.Mutex
	groupKey crypto.Key
	epoch    uint64
	// groupCipher/prevCipher carry the precomputed AEADs for the group keys
	// above: the AES key schedule and GCM tables are built once per rekey
	// instead of once per multicast seal/open.
	groupCipher *crypto.Cipher
	prevCipher  *crypto.Cipher
	// prevKey/prevEpoch retain the immediately superseded group key for
	// one epoch, so multicast that was in flight across a rekey still
	// decrypts. Anything older is rejected: the forward-secrecy boundary
	// for departed members is one rekey behind the leader's, a documented
	// trade (a member expelled at epoch n reads nothing from epoch n+2 on,
	// and in the default on-leave policy its last key dies immediately
	// after the NEXT membership change).
	prevKey   crypto.Key
	prevEpoch uint64
	view      map[string]bool
	left      bool

	// pathKeys is the LKH key bag: every node key this member holds on its
	// leaf-to-root path, by node ID (see lkh.go). Nil until the leader
	// delivers the first PathKeys — i.e. nil for flat-keyed groups.
	// syncEpoch rate-limits outbound KeySyncReq to one per target epoch.
	pathKeys  map[uint64]pathEntry
	syncEpoch uint64

	// lastAdminPayload/lastAck cache the most recently acknowledged
	// AdminMsg and its ack (under mu). When the leader retransmits an
	// unacknowledged AdminMsg (its copy of our ack was lost), the engine
	// rejects the duplicate — the nonce chain already consumed it — but the
	// runtime re-sends the cached ack, which is idempotent: a leader that
	// DID see the first ack rejects the second without state change. This
	// keeps a lost ack from escalating into an ack-deadline eviction.
	lastAdminPayload []byte
	lastAck          *wire.Envelope

	events *queue.Queue[Event]
	done   chan struct{}

	// outQ decouples producers (SendData, acks) from the transport: a writer
	// goroutine drains it in batches and transmits behind a single flush.
	outQ       *queue.Queue[wire.Envelope]
	writerDone chan struct{}

	rejected atomic.Uint64 // frames rejected by the engine or epoch checks
}

// Join connects as user to the leader over conn, runs the three-message
// authentication, and starts the receive loop. The long-term key is the
// P_user shared with the leader (crypto.DeriveKey).
func Join(conn transport.Conn, user, leader string, longTerm crypto.Key) (*Member, error) {
	return JoinOpts(conn, user, leader, longTerm, Options{})
}

// JoinOpts is Join with liveness options.
func JoinOpts(conn transport.Conn, user, leader string, longTerm crypto.Key, opts Options) (*Member, error) {
	engine, err := core.NewMemberSession(user, leader, longTerm)
	if err != nil {
		return nil, err
	}
	initReq, err := engine.Start()
	if err != nil {
		return nil, err
	}
	// The silence timeout also bounds the handshake itself: over a lossy
	// link a lost join frame would otherwise block Recv below forever,
	// since the three-message join has no retransmission. Closing the conn
	// fails the join so a supervisor can redial.
	hsDone := make(chan struct{})
	defer close(hsDone)
	if opts.SilenceTimeout > 0 {
		go func() {
			t := time.NewTimer(opts.SilenceTimeout)
			defer t.Stop()
			select {
			case <-hsDone:
			case <-t.C:
				conn.Close()
			}
		}()
	}
	if err := conn.Send(initReq); err != nil {
		return nil, fmt.Errorf("member: send join: %w", err)
	}
	// Wait for the key distribution; a hostile network may interleave
	// junk, which the engine rejects without state change.
	for engine.Phase() != core.MemberConnected {
		env, err := conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("member: join: %w", err)
		}
		ev, err := engine.Handle(env)
		if err != nil {
			continue // rejected frame; keep waiting for the genuine one
		}
		if ev.Reply != nil {
			if err := conn.Send(*ev.Reply); err != nil {
				return nil, fmt.Errorf("member: send key ack: %w", err)
			}
		}
	}

	m := &Member{
		name:       user,
		leader:     leader,
		conn:       conn,
		engine:     engine,
		silence:    opts.SilenceTimeout,
		view:       map[string]bool{user: true},
		events:     queue.New[Event](),
		done:       make(chan struct{}),
		outQ:       queue.New[wire.Envelope](),
		writerDone: make(chan struct{}),
	}
	m.lastRecv.Store(time.Now().UnixNano())
	go m.recvLoop()
	go m.writeLoop()
	if m.silence > 0 {
		go m.silenceWatchdog()
	}
	return m, nil
}

// silenceWatchdog closes the connection when the leader has been silent
// past the configured timeout, so the receive loop fails distinguishably
// (ErrLeaderSilent) and a supervisor can rejoin elsewhere. This is the
// member-side half of the liveness layer: the leader detects dead members
// via ack deadlines, the member detects a dead leader via silence.
func (m *Member) silenceWatchdog() {
	tick := m.silence / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-t.C:
			last := time.Unix(0, m.lastRecv.Load())
			if time.Since(last) > m.silence {
				m.silenced.Store(true)
				mWatchdogTrips.Inc()
				m.conn.Close()
				return
			}
		}
	}
}

// Name returns this member's identity.
func (m *Member) Name() string { return m.name }

// Leader returns the leader's identity.
func (m *Member) Leader() string { return m.leader }

// Members returns this member's current view of the group, sorted.
func (m *Member) Members() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.view))
	for u := range m.view {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Epoch returns the current group-key epoch (0 until the first key
// arrives).
func (m *Member) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// GroupKey returns the current group key and epoch. Exposed for tests and
// attack scenarios.
func (m *Member) GroupKey() (crypto.Key, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.groupKey, m.epoch
}

// WaitReady blocks until the leader's first group key has arrived (the
// session is then fully usable for SendData), the session closes, or the
// timeout expires. The improved protocol distributes the group key in a
// group-management message AFTER authentication (Section 3.2 removed K_g
// from the handshake), so there is a short window where a freshly joined
// member cannot encrypt yet.
func (m *Member) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		m.mu.Lock()
		ready, left := m.groupKey.Valid(), m.left
		m.mu.Unlock()
		if ready {
			return nil
		}
		if left {
			return ErrLeft
		}
		time.Sleep(time.Millisecond)
	}
	return ErrNoGroupKey
}

// Rejected returns how many frames were rejected as replays, forgeries, or
// stale-epoch traffic — the observable footprint of tolerated intrusion
// attempts.
func (m *Member) Rejected() uint64 { return m.rejected.Load() }

// reject records one rejected frame, both per member and in the global
// snapshot.
func (m *Member) reject() {
	m.rejected.Add(1)
	mRejected.Inc()
}

// Next blocks until the next event (or EventClosed).
func (m *Member) Next() (Event, error) {
	ev, err := m.events.Pop()
	if err != nil {
		return Event{Kind: EventClosed}, ErrLeft
	}
	return ev, nil
}

// TryNext returns the next event without blocking.
func (m *Member) TryNext() (Event, bool) {
	return m.events.TryPop()
}

// SendData multicasts application data to the group, encrypted under the
// current group key.
func (m *Member) SendData(data []byte) error {
	m.mu.Lock()
	gc, epoch, left := m.groupCipher, m.epoch, m.left
	m.mu.Unlock()
	if left {
		return ErrLeft
	}
	if gc == nil {
		return ErrNoGroupKey
	}
	env := wire.Envelope{Type: wire.TypeAppData, Sender: m.name, Receiver: m.leader}
	payload := wire.AppDataPayload{Sender: m.name, Epoch: epoch, Data: data}
	box, err := gc.Seal(payload.Marshal(), env.Header())
	if err != nil {
		return err
	}
	env.Payload = box
	return m.send(env)
}

// send hands an envelope to the writer goroutine. A closed queue means the
// session is tearing down; report it as the connection being closed so
// callers see the same error a direct send on a dead conn would yield.
func (m *Member) send(env wire.Envelope) error {
	if err := m.outQ.Push(env); err != nil {
		return transport.ErrClosed
	}
	return nil
}

// writeLoop drains the outbound queue in batches and transmits each drained
// backlog behind a single flush. It exits when the queue closes (Leave or
// the receive loop tearing down) or the transport fails.
func (m *Member) writeLoop() {
	defer close(m.writerDone)
	var (
		envs  []wire.Envelope
		batch []transport.Outgoing
	)
	for {
		var err error
		envs, err = m.outQ.PopAll(envs)
		if err != nil {
			return
		}
		batch = batch[:0]
		for _, e := range envs {
			batch = append(batch, transport.Outgoing{Env: e})
		}
		if err := m.conn.SendBatch(batch); err != nil {
			return
		}
	}
}

// Leave ends the session with the unreplayable ReqClose and closes the
// connection.
func (m *Member) Leave() error {
	m.mu.Lock()
	if m.left {
		m.mu.Unlock()
		return ErrLeft
	}
	m.left = true
	m.mu.Unlock()

	closeEnv, err := m.engineLeave()
	if err == nil {
		err = m.send(closeEnv)
	}
	// Close the queue and wait for the writer so the ReqClose actually
	// flushes before the connection is torn down under it.
	m.outQ.Close()
	<-m.writerDone
	m.conn.Close()
	<-m.done
	return err
}

// engineLeave serializes access to the engine against the receive loop.
func (m *Member) engineLeave() (wire.Envelope, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.engine.Leave()
}

// recvLoop drives the engine with incoming frames until the connection
// drops.
func (m *Member) recvLoop() {
	defer close(m.done)
	for {
		env, err := m.conn.Recv()
		if err != nil {
			m.mu.Lock()
			left := m.left
			m.mu.Unlock()
			if left {
				err = nil
			} else if m.silenced.Load() {
				err = ErrLeaderSilent
			}
			m.events.Push(Event{Kind: EventClosed, Err: err})
			m.events.Close()
			m.outQ.Close() // no conn to write to; release the writer
			return
		}
		m.lastRecv.Store(time.Now().UnixNano())
		m.handle(env)
	}
}

// handle processes one received frame.
func (m *Member) handle(env wire.Envelope) {
	switch env.Type {
	case wire.TypeAdminMsg:
		m.handleAdmin(env)
	case wire.TypeResumeAck:
		// A retransmitted ResumeAck (our completing ack was lost) is rejected
		// by the engine — the resumption already consumed it — but the re-ack
		// cache seeded by Resume answers it, same as a duplicate AdminMsg.
		m.handleAdmin(env)
	case wire.TypeKeyUpdate:
		m.handleKeyUpdate(env)
	case wire.TypeAppData:
		m.handleAppData(env)
	default:
		m.reject()
	}
}

// handleAdmin feeds an AdminMsg to the engine, sends the acknowledgment,
// and applies the body to the view.
func (m *Member) handleAdmin(env wire.Envelope) {
	m.mu.Lock()
	ev, err := m.engine.Handle(env)
	if err != nil {
		// A duplicate of the last acked AdminMsg means the leader never got
		// our ack; re-send it. Anything else is junk to tolerate.
		var resend *wire.Envelope
		if m.lastAck != nil && bytes.Equal(env.Payload, m.lastAdminPayload) {
			resend = m.lastAck
		}
		m.mu.Unlock()
		m.reject()
		if resend != nil {
			mReacks.Inc()
			m.conn.Send(*resend)
		}
		return
	}
	var out Event
	switch body := ev.Admin.(type) {
	case wire.NewGroupKey:
		m.installGroupKeyLocked(body.Key, body.Epoch)
		out = Event{Kind: EventRekey, Epoch: body.Epoch}
	case wire.PathKeys:
		out = m.applyPathKeysLocked(body)
	case wire.MemberJoined:
		m.view[body.Name] = true
		out = Event{Kind: EventJoined, Name: body.Name}
	case wire.MemberLeft:
		delete(m.view, body.Name)
		out = Event{Kind: EventLeft, Name: body.Name}
	case wire.MemberList:
		m.view = make(map[string]bool, len(body.Names))
		for _, n := range body.Names {
			m.view[n] = true
		}
		out = Event{Kind: EventJoined, Name: m.name} // our own join completed
	case wire.Heartbeat:
		// Liveness probe: the ack sent below is the whole point; no
		// application event. Receipt already refreshed the silence watchdog.
	}
	if ev.Reply != nil {
		m.lastAdminPayload = append(m.lastAdminPayload[:0], env.Payload...)
		ack := *ev.Reply
		m.lastAck = &ack
	}
	m.mu.Unlock()

	// Acks bypass the batching queue: the pipeline is ack-gated with at most
	// one AdminMsg outstanding per member, so there is never an ack backlog
	// to coalesce — routing them through the writer would only add a
	// goroutine handoff to the round trip that gates every broadcast. Conn
	// implementations are safe for concurrent use, so the direct send may
	// interleave with the writer's batches.
	if ev.Reply != nil {
		if err := m.conn.Send(*ev.Reply); err != nil {
			return
		}
	}
	if out.Kind != 0 {
		out.Seq = ev.Seq
		m.events.Push(out)
		mEvents.Inc()
	}
}

// handleAppData decrypts relayed application data under the current group
// key; traffic under old epochs (e.g. replays predating a rekey) is
// rejected.
func (m *Member) handleAppData(env wire.Envelope) {
	m.mu.Lock()
	gc, epoch := m.groupCipher, m.epoch
	prev, prevEpoch := m.prevCipher, m.prevEpoch
	m.mu.Unlock()
	if gc == nil {
		m.reject()
		return
	}
	// Try the current key first, then the one-epoch grace key for traffic
	// that was in flight across a rekey.
	plain, err := gc.Open(env.Payload, env.Header())
	wantEpoch := epoch
	if err != nil && prev != nil {
		plain, err = prev.Open(env.Payload, env.Header())
		wantEpoch = prevEpoch
	}
	if err != nil {
		m.reject()
		return
	}
	p, err := wire.UnmarshalAppData(plain)
	if err != nil || p.Epoch != wantEpoch {
		m.reject()
		return
	}
	m.events.Push(Event{Kind: EventData, From: p.Sender, Epoch: p.Epoch, Data: p.Data})
	mEvents.Inc()
}
