package member

import (
	"fmt"
	"time"

	"enclaves/internal/core"
	"enclaves/internal/crypto"
	"enclaves/internal/queue"
	"enclaves/internal/transport"
	"enclaves/internal/wire"
)

// ResumeState snapshots the session state needed to resume this member's
// session against a promoted standby: the session key K_a and the latest
// chained nonce. It reports false while the engine is not in an established
// session (mid-handshake, or already left). The snapshot stays valid after
// the connection dies — connection loss does not touch engine state — which
// is exactly the failover case.
func (m *Member) ResumeState() (core.SessionState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.left {
		return core.SessionState{}, false
	}
	return m.engine.ExportState()
}

// Resume re-attaches a session to a (promoted) leader using the state of a
// previous connection: the two-message resumption sub-protocol replaces the
// password handshake, authenticating under the existing session key and the
// last chained nonce. The ResumeAck delivers the current (post-promotion)
// group key, so the returned Member is immediately ready — no WaitReady
// window, and no pre-promotion key ever held.
func Resume(conn transport.Conn, st core.SessionState, longTerm crypto.Key, opts Options) (*Member, error) {
	engine, err := core.ResumeMemberSession(st.User, st.Leader, longTerm, st)
	if err != nil {
		return nil, err
	}
	resumeEnv, err := engine.StartResume()
	if err != nil {
		return nil, err
	}
	// Bound the resumption exchange like JoinOpts bounds the join: a lost
	// frame must fail the attempt so the supervisor can fall back.
	hsDone := make(chan struct{})
	defer close(hsDone)
	if opts.SilenceTimeout > 0 {
		go func() {
			t := time.NewTimer(opts.SilenceTimeout)
			defer t.Stop()
			select {
			case <-hsDone:
			case <-t.C:
				conn.Close()
			}
		}()
	}
	if err := conn.Send(resumeEnv); err != nil {
		return nil, fmt.Errorf("member: send resume: %w", err)
	}

	// Wait for the ResumeAck; junk is rejected without state change, but a
	// freshness or authentication failure on a genuine ResumeAck is
	// unrecoverable for this attempt (the leader rejected or the state is
	// stale), surfaced when the connection then drops.
	var (
		keyBody    wire.AdminBody
		keySeq     uint64
		firstReply *wire.Envelope
		ackedBytes []byte
	)
	for engine.Phase() != core.MemberConnected {
		env, err := conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("member: resume: %w", err)
		}
		ev, err := engine.Handle(env)
		if err != nil {
			continue
		}
		switch ev.Admin.(type) {
		case wire.NewGroupKey, wire.PathKeys:
			// The post-promotion key material: the flat group key, or under
			// LKH the member's complete leaf-to-root path (whose root IS the
			// group key).
			keyBody, keySeq = ev.Admin, ev.Seq
		default:
			// Any other body (or none) cannot complete the resumption; the
			// !Valid check below rejects the attempt.
		}
		firstReply = ev.Reply
		ackedBytes = env.Payload
	}

	m := &Member{
		name:       st.User,
		leader:     st.Leader,
		conn:       conn,
		engine:     engine,
		silence:    opts.SilenceTimeout,
		view:       map[string]bool{st.User: true},
		events:     queue.New[Event](),
		done:       make(chan struct{}),
		outQ:       queue.New[wire.Envelope](),
		writerDone: make(chan struct{}),
	}
	switch body := keyBody.(type) {
	case wire.NewGroupKey:
		m.groupKey = body.Key
		m.epoch = body.Epoch
		m.groupCipher, _ = crypto.NewCipher(body.Key)
	case wire.PathKeys:
		m.pathKeys = make(map[uint64]pathEntry, len(body.Entries))
		for _, e := range body.Entries {
			m.pathKeys[e.Node] = pathEntry{ver: e.Ver, key: e.Key}
		}
		if gk, ok := body.GroupKey(); ok {
			m.groupKey = gk
			m.groupCipher, _ = crypto.NewCipher(gk)
		}
		m.epoch = body.Epoch
	default:
		// keyBody is nil: no key material arrived; rejected below.
	}
	if !m.groupKey.Valid() {
		conn.Close()
		return nil, fmt.Errorf("member: resume ack carried no group key")
	}
	m.lastRecv.Store(time.Now().UnixNano())
	// Seed the re-ack cache with the ResumeAck itself: if our ack below is
	// lost, the leader retransmits the ResumeAck and the cache answers it,
	// exactly as for an ordinary AdminMsg (see handleAdmin).
	if firstReply != nil {
		m.lastAdminPayload = append([]byte(nil), ackedBytes...)
		ack := *firstReply
		m.lastAck = &ack
	}

	// Ack the ResumeAck only now that the loops are about to start: from the
	// leader's point of view the pipeline resumes here, and the MemberList
	// that follows must find a running receive loop.
	if firstReply != nil {
		if err := conn.Send(*firstReply); err != nil {
			conn.Close()
			return nil, fmt.Errorf("member: send resume ack: %w", err)
		}
	}
	mResumed.Inc()
	go m.recvLoop()
	go m.writeLoop()
	if m.silence > 0 {
		go m.silenceWatchdog()
	}
	// Surface the post-promotion key to the application as the usual rekey
	// event, correlated with the leader's pipeline sequence.
	m.events.Push(Event{Kind: EventRekey, Epoch: m.epoch, Seq: keySeq})
	mEvents.Inc()
	return m, nil
}
