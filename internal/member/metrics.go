package member

import "enclaves/internal/metrics"

// Member-side instruments, totals across every Member/Session in the
// process. mRejected mirrors the per-member Rejected() counter into the
// global snapshot; the rest cover the liveness machinery: watchdog trips
// (leader declared silent), re-acks (duplicate AdminMsg answered from the
// ack cache), and rejoin attempts by the auto-rejoin supervisor.
var (
	mEvents        = metrics.NewCounter("member_events_total")
	mRejected      = metrics.NewCounter("member_rejected_total")
	mWatchdogTrips = metrics.NewCounter("member_watchdog_trips_total")
	mReacks        = metrics.NewCounter("member_reacks_total")
	mRejoins       = metrics.NewCounter("member_rejoins_total")

	// Failover resumption: attempts by the supervisor, sessions actually
	// re-attached without a password re-handshake, and attempts that fell
	// back to the full rejoin.
	mResumeAttempts = metrics.NewCounter("member_resume_attempts_total")
	mResumed        = metrics.NewCounter("member_resumed_total")
	mResumeFallback = metrics.NewCounter("member_resume_fallback_total")

	// LKH: subtree key updates applied to the path-key bag, and KeySyncReq
	// resyncs sent after an update that did not fit the bag.
	mKeyUpdates  = metrics.NewCounter("member_key_updates_total")
	mKeySyncReqs = metrics.NewCounter("member_key_sync_reqs_total")
)
