module enclaves

go 1.22
