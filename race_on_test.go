//go:build race

package enclaves

// raceEnabled scales the soak sizes down under the race detector, whose
// 5-20× slowdown turns the O(n²) join-storm setup into a timeout at full
// size. The interleavings the detector needs show up at a fraction of the
// member count.
const raceEnabled = true
