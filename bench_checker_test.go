// Experiment B4' (DESIGN.md): parallel model-checker scale-up. The sweep
// explores representative configurations at every worker count up to
// GOMAXPROCS and records throughput to BENCH_checker.json, so CI archives
// the states/sec trajectory of the Section 5 verification the same way it
// tracks the runtime benches. The per-config speedup column compares
// against the workers=1 run of the same invocation.
package enclaves

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"enclaves/internal/checker"
	"enclaves/internal/model"
)

// checkerReport mirrors the writeScaleEntry pattern for BENCH_checker.json:
// load once, upsert by (sessions, admin, lkh, intruder_sessions, workers),
// rewrite the whole file on every update so partial -bench runs refine the
// artifact instead of truncating it.
var checkerReport struct {
	sync.Mutex
	loaded  bool
	Explore []map[string]any
}

func writeCheckerEntry(b *testing.B, entry map[string]any) {
	checkerReport.Lock()
	defer checkerReport.Unlock()
	if !checkerReport.loaded {
		checkerReport.loaded = true
		var prev struct {
			Explore []map[string]any `json:"explore_sweep"`
		}
		if data, err := os.ReadFile("BENCH_checker.json"); err == nil && json.Unmarshal(data, &prev) == nil {
			checkerReport.Explore = prev.Explore
		}
	}
	replaced := false
	for i, e := range checkerReport.Explore {
		same := true
		for _, k := range []string{"sessions", "admin", "lkh", "intruder_sessions", "workers"} {
			if fmt.Sprint(e[k]) != fmt.Sprint(entry[k]) {
				same = false
				break
			}
		}
		if same {
			checkerReport.Explore[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		checkerReport.Explore = append(checkerReport.Explore, entry)
	}
	data, err := json.MarshalIndent(map[string]any{
		"explore_sweep": checkerReport.Explore,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_checker.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchWorkerCounts returns the worker sweep for this machine: 1, 2, 4, …
// up to GOMAXPROCS (always including GOMAXPROCS itself). On a single-core
// runner the sweep degenerates to {1}, and the recorded gomaxprocs column
// says so.
func benchWorkerCounts() []int {
	g := runtime.GOMAXPROCS(0)
	var out []int
	for w := 1; w < g; w *= 2 {
		out = append(out, w)
	}
	return append(out, g)
}

// BenchmarkExplore sweeps the parallel BFS over the headline configurations
// — base (2,2), the LKH+failover extension at (2,2) (the acceptance
// configuration for the parallel checker), and one bound notch deeper — at
// every worker count, reporting states, depth, and states/sec, and
// recording the sweep in BENCH_checker.json.
func BenchmarkExplore(b *testing.B) {
	configs := []struct {
		name string
		cfg  model.Config
	}{
		{"base_s2_a2", model.Config{MaxSessions: 2, MaxAdmin: 2}},
		{"lkh_s2_a2", model.Config{MaxSessions: 2, MaxAdmin: 2, LKH: true, Failover: true}},
		{"lkh_s3_a2", model.Config{MaxSessions: 3, MaxAdmin: 2, LKH: true, Failover: true}},
	}
	for _, c := range configs {
		seqStatesPerSec := 0.0
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(b *testing.B) {
				var ex *checker.Exploration
				b.ReportAllocs()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					ex = checker.ExploreOpts(c.cfg, checker.Options{Workers: workers})
				}
				elapsed := time.Since(start)
				for _, o := range checker.AllInvariants(ex) {
					if !o.Holds {
						b.Fatalf("invariant failed: %s", o)
					}
				}
				statesPerSec := float64(len(ex.Nodes)*b.N) / elapsed.Seconds()
				if workers == 1 {
					seqStatesPerSec = statesPerSec
				}
				speedup := 0.0
				if seqStatesPerSec > 0 {
					speedup = statesPerSec / seqStatesPerSec
				}
				b.ReportMetric(float64(len(ex.Nodes)), "states")
				b.ReportMetric(statesPerSec, "states/sec")
				b.ReportMetric(speedup, "speedup")
				writeCheckerEntry(b, map[string]any{
					"sessions":          c.cfg.MaxSessions,
					"admin":             c.cfg.MaxAdmin,
					"lkh":               c.cfg.LKH,
					"intruder_sessions": c.cfg.IntruderSessions,
					"workers":           workers,
					"gomaxprocs":        runtime.GOMAXPROCS(0),
					"states":            len(ex.Nodes),
					"transitions":       ex.Transitions,
					"depth":             ex.Depth,
					"states_per_sec":    statesPerSec,
					"speedup_vs_seq":    speedup,
					"ns_per_op":         elapsed.Nanoseconds() / int64(b.N),
				})
			})
		}
	}
}
